package main

import (
	"strings"
	"testing"
)

func runArtifact(t *testing.T, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(args, &sb); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return sb.String()
}

// small keeps campaign workloads tiny for test speed.
var small = []string{"-binsem-rounds", "2", "-sync-rounds", "2", "-sync-buf", "32", "-n", "300"}

func withSmall(artifact string) []string {
	return append(append([]string{}, small...), artifact)
}

func TestTable1Artifact(t *testing.T) {
	out := runArtifact(t, "table1")
	if !strings.Contains(out, "Table I") || !strings.Contains(out, "1.328e-13") {
		t.Errorf("unexpected output:\n%s", out)
	}
}

func TestFigure1Artifact(t *testing.T) {
	out := runArtifact(t, "figure1")
	for _, want := range []string{"108", "74.1%", "50.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestDilutionArtifact(t *testing.T) {
	out := runArtifact(t, "dilution")
	for _, want := range []string{"62.5%", "75.0%", "r(DFT) = 1.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFigure2Artifact(t *testing.T) {
	if testing.Short() {
		t.Skip("scans are slow")
	}
	out := runArtifact(t, withSmall("figure2")...)
	for _, want := range []string{"Figure 2a", "Figure 2e", "hardening HURTS", "hardening helps"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestPruneStatsArtifact(t *testing.T) {
	out := runArtifact(t, withSmall("prunestats")...)
	if !strings.Contains(out, "reduction factor") || !strings.Contains(out, "x") {
		t.Errorf("unexpected output:\n%s", out)
	}
}

func TestSamplingArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("sampling campaigns are slow")
	}
	out := runArtifact(t, withSmall("sampling")...)
	for _, want := range []string{"raw", "effective", "classes(biased)", "95% CI"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRegistersArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("scans are slow")
	}
	out := runArtifact(t, withSmall("registers")...)
	for _, want := range []string{"registers (§VI-B)", "HURTS", "helps"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestMultiFaultArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("4560 experiments")
	}
	out := runArtifact(t, "multifault")
	for _, want := range []string{"single fault", "4560", "45.6%"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSweepArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("many scans")
	}
	out := runArtifact(t, withSmall("sweep")...)
	if !strings.Contains(out, "buffer (bytes)") || !strings.Contains(out, "HURTS") {
		t.Errorf("unexpected sweep output:\n%s", out)
	}
}

func TestMechanismsArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("many scans")
	}
	out := runArtifact(t, withSmall("mechanisms")...)
	for _, want := range []string{"SUM+DMR", "TMR", "Double-fault robustness", "2.1%"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCSVMode(t *testing.T) {
	out := runArtifact(t, "-csv", "table1")
	if !strings.Contains(out, "k,P(k faults)") {
		t.Errorf("CSV header missing:\n%s", out)
	}
}

func TestBadArguments(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"nonsense"}, &sb); err == nil {
		t.Error("unknown artifact must fail")
	}
	if err := run([]string{}, &sb); err == nil {
		t.Error("missing artifact must fail")
	}
	if err := run([]string{"table1", "extra"}, &sb); err == nil {
		t.Error("extra arguments must fail")
	}
}
