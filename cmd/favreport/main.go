// Command favreport regenerates every table and figure of the paper's
// evaluation from scratch on the fav32 simulator.
//
// Usage:
//
//	favreport [flags] <artifact>
//
// Artifacts:
//
//	table1      Table I: Poisson probabilities for k independent faults
//	figure1     Figure 1: def/use pruning example, 108 -> 8 experiments
//	dilution    §IV/Figure 3: the DFT/DFT' fault-space dilution delusion
//	figure2     Figure 2: bin_sem2/sync2 baseline vs SUM+DMR (panels a-g)
//	prunestats  §III-C: experiment-reduction statistics per variant
//	sampling    §III-E/§V-C: Pitfall 2 (biased sampling) and Pitfall 3
//	registers   §VI-B extension: the same comparison under register faults
//	multifault  §III-A extension: SUM+DMR under double faults
//	sweep       §V-B crossover: sync2 verdict vs unprotected-buffer size
//	mechanisms  SUM+DMR vs TMR, compared with the paper's sound metric
//	all         everything above, in paper order
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"faultspace"
	"faultspace/internal/experiments"
	"faultspace/internal/progs"
	"faultspace/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "favreport:", err)
		os.Exit(1)
	}
}

type options struct {
	csv       bool
	samples   int
	seed      int64
	binsemN   int
	syncN     int
	syncBuf   int
	dilutionN int
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("favreport", flag.ContinueOnError)
	opts := options{}
	fs.BoolVar(&opts.csv, "csv", false, "emit tables as CSV instead of aligned text")
	fs.IntVar(&opts.samples, "n", 2000, "sample count for the sampling artifact")
	fs.Int64Var(&opts.seed, "seed", 1, "PRNG seed for sampling campaigns")
	fs.IntVar(&opts.binsemN, "binsem-rounds", 4, "bin_sem2 ping-pong rounds")
	fs.IntVar(&opts.syncN, "sync-rounds", 3, "sync2 handshake rounds")
	fs.IntVar(&opts.syncBuf, "sync-buf", 64, "sync2 message-buffer bytes")
	fs.IntVar(&opts.dilutionN, "dilution", 4, "instructions prepended by DFT/DFT'")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("expected exactly one artifact argument")
	}

	artifact := fs.Arg(0)
	switch artifact {
	case "table1":
		return table1(w, opts)
	case "figure1":
		return figure1(w, opts)
	case "dilution":
		return dilution(w, opts)
	case "figure2":
		return figure2(w, opts)
	case "prunestats":
		return pruneStats(w, opts)
	case "sampling":
		return sampling(w, opts)
	case "registers":
		return registerSpace(w, opts)
	case "multifault":
		return multiFault(w, opts)
	case "sweep":
		return sweep(w, opts)
	case "mechanisms":
		return mechanisms(w, opts)
	case "all":
		for _, f := range []func(io.Writer, options) error{
			table1, figure1, dilution, figure2, pruneStats, sampling,
			registerSpace, multiFault, sweep, mechanisms,
		} {
			if err := f(w, opts); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
		return nil
	default:
		return fmt.Errorf("unknown artifact %q", artifact)
	}
}

func renderTable(w io.Writer, t *report.Table, opts options) error {
	if opts.csv {
		return t.RenderCSV(w)
	}
	return t.Render(w)
}

func table1(w io.Writer, opts options) error {
	t1, err := experiments.Table1(5)
	if err != nil {
		return err
	}
	tbl := &report.Table{
		Title: fmt.Sprintf("Table I: Poisson probabilities for k independent faults per run (λ = %.4g)",
			t1.Lambda),
		Headers: []string{"k", "P(k faults)"},
	}
	for _, row := range t1.Rows {
		p := fmt.Sprintf("%.4g", row.P)
		if row.K == 0 {
			p = fmt.Sprintf("%.15f", row.P)
		}
		tbl.AddRow(row.K, p)
	}
	return renderTable(w, tbl, opts)
}

func figure1(w io.Writer, opts options) error {
	f1, err := experiments.Figure1()
	if err != nil {
		return err
	}
	tbl := &report.Table{
		Title:   "Figure 1: def/use pruning of a 12-cycle x 9-bit fault space (W @ cycle 4, R @ cycle 11)",
		Headers: []string{"quantity", "value"},
	}
	tbl.AddRow("raw fault-space coordinates", f1.RawCoordinates)
	tbl.AddRow("experiments after pruning", f1.Experiments)
	tbl.AddRow("weight per equivalence class", f1.ClassWeight)
	tbl.AddRow("known 'No Effect' coordinates", f1.KnownNoEffect)
	tbl.AddRow("coverage, unweighted (Pitfall 1)", fmt.Sprintf("%.1f%%", 100*f1.NaiveCoverage))
	tbl.AddRow("coverage, weighted (correct)", fmt.Sprintf("%.1f%%", 100*f1.WeightCoverage))
	return renderTable(w, tbl, opts)
}

func dilution(w io.Writer, opts options) error {
	d, err := experiments.Dilution(opts.dilutionN, faultspace.ScanOptions{})
	if err != nil {
		return err
	}
	if err := d.Verify(); err != nil {
		return fmt.Errorf("dilution invariants: %w", err)
	}
	tbl := &report.Table{
		Title: fmt.Sprintf("Figure 3/§IV: the fault-space dilution delusion (n = %d)", opts.dilutionN),
		Headers: []string{"variant", "Δt", "w", "F (failures)",
			"coverage", "coverage (activated-only)"},
	}
	for _, v := range []experiments.VariantAnalysis{d.Baseline, d.DFT, d.DFTPrime} {
		tbl.AddRow(v.Name, v.RuntimeCycles, v.SpaceSize, v.FailWeight,
			fmt.Sprintf("%.1f%%", 100*v.CoverageWeighted),
			fmt.Sprintf("%.1f%%", 100*v.CoverageActivatedOnly))
	}
	if err := renderTable(w, tbl, opts); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nCoverage climbs although the failure count F never moves: "+
		"ratio r(DFT) = %.2f, r(DFT') = %.2f.\n", d.CmpDFT.RatioWeighted, d.CmpDFTPrime.RatioWeighted)
	return nil
}

func figure2(w io.Writer, opts options) error {
	f2, err := experiments.Figure2(experiments.Figure2Config{
		BinSemRounds: opts.binsemN,
		SyncRounds:   opts.syncN,
		SyncBufBytes: opts.syncBuf,
	}, faultspace.ScanOptions{})
	if err != nil {
		return err
	}
	pairs := []experiments.Pair{f2.BinSem2, f2.Sync2}

	panels := []struct {
		title string
		unit  string
		value func(experiments.VariantAnalysis) float64
	}{
		{"Figure 2a: fault coverage WITHOUT weighting (Pitfall 1)", "%",
			func(v experiments.VariantAnalysis) float64 { return 100 * v.CoverageUnweighted }},
		{"Figure 2b: fault coverage WITH weighting", "%",
			func(v experiments.VariantAnalysis) float64 { return 100 * v.CoverageWeighted }},
		{"Figure 2d: absolute failure counts WITHOUT weighting (Pitfall 1)", "",
			func(v experiments.VariantAnalysis) float64 { return float64(v.FailClasses) }},
		{"Figure 2e: absolute failure counts WITH weighting (the paper's metric)", "",
			func(v experiments.VariantAnalysis) float64 { return float64(v.FailWeight) }},
		{"Figure 2g-1: runtime (CPU cycles)", " cycles",
			func(v experiments.VariantAnalysis) float64 { return float64(v.RuntimeCycles) }},
		{"Figure 2g-2: memory usage (bytes)", " B",
			func(v experiments.VariantAnalysis) float64 { return float64(v.RAMBytes) }},
	}
	for _, panel := range panels {
		chart := &report.BarChart{Title: panel.title, Unit: panel.unit}
		for _, p := range pairs {
			chart.Add(p.Baseline.Name, panel.value(p.Baseline))
			chart.Add(p.Hardened.Name, panel.value(p.Hardened))
		}
		if err := chart.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}

	tbl := &report.Table{
		Title: "Comparison ratios r = F_hardened/F_baseline (r < 1 means real improvement)",
		Headers: []string{"benchmark", "r (weighted)", "r (unweighted)",
			"coverage gain (pp)", "MWTF gain", "verdict"},
	}
	for _, p := range pairs {
		verdict := "hardening helps"
		if !p.Cmp.FailuresSayImproved() {
			verdict = "hardening HURTS"
		}
		if p.Cmp.Misleading() {
			verdict += " (coverage metric says otherwise!)"
		}
		tbl.AddRow(p.Name,
			fmt.Sprintf("%.3f", p.Cmp.RatioWeighted),
			fmt.Sprintf("%.3f", p.Cmp.RatioUnweighted),
			fmt.Sprintf("%+.2f", p.Cmp.CoverageGainWeighted),
			fmt.Sprintf("%.2fx", p.Cmp.MWTFGain),
			verdict)
	}
	return renderTable(w, tbl, opts)
}

func pruneStats(w io.Writer, opts options) error {
	tbl := &report.Table{
		Title:   "§III-C: def/use pruning effectiveness",
		Headers: []string{"variant", "raw fault space w", "experiments", "known No Effect", "reduction factor"},
	}
	specs := []progs.Spec{progs.BinSem2(opts.binsemN), progs.Sync2(opts.syncN, opts.syncBuf)}
	for _, spec := range specs {
		for _, build := range []func() (*faultspace.Program, error){spec.Baseline, spec.Hardened} {
			p, err := build()
			if err != nil {
				return err
			}
			st, err := experiments.PruneStatsFor(p)
			if err != nil {
				return err
			}
			tbl.AddRow(st.Name, st.SpaceSize, st.Experiments, st.KnownNoEffect,
				fmt.Sprintf("%.0fx", st.ReductionFactor))
		}
	}
	return renderTable(w, tbl, opts)
}

func sampling(w io.Writer, opts options) error {
	spec := progs.Sync2(opts.syncN, opts.syncBuf)
	p, err := spec.Baseline()
	if err != nil {
		return err
	}
	s, err := experiments.Sampling(p, opts.samples, opts.seed, faultspace.ScanOptions{})
	if err != nil {
		return err
	}
	tbl := &report.Table{
		Title: fmt.Sprintf("Pitfalls 2 & 3: sampling %s (N = %d, seed = %d); true F = %d, true coverage = %.2f%%",
			s.Name, s.N, s.Seed, s.TrueFailWeight, 100*s.TrueCoverage),
		Headers: []string{"mode", "population", "sampled F", "experiments",
			"F extrapolated [95% CI]", "naive coverage estimate"},
	}
	for _, est := range []experiments.SampleEstimate{s.Raw, s.Effective, s.Biased} {
		tbl.AddRow(est.Mode, est.Population, est.SampledFail, est.Experiments,
			fmt.Sprintf("%.0f [%.0f, %.0f]", est.FailEstimate, est.FailLo, est.FailHi),
			fmt.Sprintf("%.2f%%", 100*est.CoverageEstimate))
	}
	if err := renderTable(w, tbl, opts); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nNote: the class-uniform 'biased' estimator ignores equivalence-class weights")
	fmt.Fprintln(w, "(Pitfall 2); its extrapolation basis is the class count, not the fault space,")
	fmt.Fprintln(w, "so its numbers are not comparable to the raw/effective estimates.")
	return nil
}

func registerSpace(w io.Writer, opts options) error {
	r, err := experiments.RegisterSpace(progs.BinSem2(opts.binsemN), faultspace.ScanOptions{})
	if err != nil {
		return err
	}
	tbl := &report.Table{
		Title: fmt.Sprintf("§VI-B extension: %s under memory vs register fault models", r.Name),
		Headers: []string{"fault space", "F baseline", "F hardened", "ratio r",
			"coverage gain (pp)", "verdict"},
	}
	for _, row := range []struct {
		name string
		cmp  faultspace.Comparison
	}{
		{"memory (the paper's model)", r.Memory},
		{"registers (§VI-B)", r.Registers},
	} {
		verdict := "helps"
		if !row.cmp.FailuresSayImproved() {
			verdict = "HURTS"
		}
		tbl.AddRow(row.name, row.cmp.Baseline.FailWeight, row.cmp.Hardened.FailWeight,
			fmt.Sprintf("%.3f", row.cmp.RatioWeighted),
			fmt.Sprintf("%+.2f", row.cmp.CoverageGainWeighted), verdict)
	}
	if err := renderTable(w, tbl, opts); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nSUM+DMR replicates memory only; under the register fault model its")
	fmt.Fprintln(w, "runtime overhead multiplies the exposure of live registers instead —")
	fmt.Fprintln(w, "the choice of fault space can invert the conclusion entirely.")
	return nil
}

func multiFault(w io.Writer, opts options) error {
	r, err := experiments.MultiFault(faultspace.ScanOptions{})
	if err != nil {
		return err
	}
	tbl := &report.Table{
		Title:   "§III-A extension: SUM+DMR under single vs double faults (one protected word)",
		Headers: []string{"injection", "experiments", "failures", "failure rate"},
	}
	tbl.AddRow("single fault (any of 96 bits)", r.SingleTotal, r.SingleFailures,
		fmt.Sprintf("%.1f%%", 100*float64(r.SingleFailures)/float64(r.SingleTotal)))
	tbl.AddRow("double fault (all 4560 pairs)", r.PairTotal, r.PairFailures,
		fmt.Sprintf("%.1f%%", 100*r.FailureFraction()))
	for _, key := range []string{"P+R", "C+R", "C+P", "P+P", "R+R", "C+C"} {
		total := r.PairTotalByWords[key]
		if total == 0 {
			continue
		}
		fails := r.PairFailuresByWords[key]
		tbl.AddRow("  pairs "+key, total, fails,
			fmt.Sprintf("%.1f%%", 100*float64(fails)/float64(total)))
	}
	if err := renderTable(w, tbl, opts); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nP = primary, R = replica, C = checksum. The single-fault guarantee is")
	fmt.Fprintln(w, "airtight; pairs spanning two words defeat the complement-checksum vote")
	fmt.Fprintln(w, "(except P+C pairs on different bit positions). §III-A's Poisson argument")
	fmt.Fprintln(w, "is what makes this collapse irrelevant at realistic soft-error rates.")
	return nil
}

func sweep(w io.Writer, opts options) error {
	s, err := experiments.SweepSync2Buffer(opts.syncN, nil, faultspace.ScanOptions{})
	if err != nil {
		return err
	}
	tbl := &report.Table{
		Title: fmt.Sprintf("§V-B crossover: sync2(n=%d) verdict vs unprotected message-buffer size",
			s.Rounds),
		Headers: []string{"buffer (bytes)", "F baseline", "F hardened", "ratio r",
			"coverage gain (pp)", "verdict"},
	}
	for _, p := range s.Points {
		verdict := "helps"
		if !p.Cmp.FailuresSayImproved() {
			verdict = "HURTS"
		}
		tbl.AddRow(p.BufBytes, p.Cmp.Baseline.FailWeight, p.Cmp.Hardened.FailWeight,
			fmt.Sprintf("%.3f", p.Cmp.RatioWeighted),
			fmt.Sprintf("%+.2f", p.Cmp.CoverageGainWeighted), verdict)
	}
	if err := renderTable(w, tbl, opts); err != nil {
		return err
	}
	first, last := s.Points[0].Cmp.RatioWeighted, s.Points[len(s.Points)-1].Cmp.RatioWeighted
	switch x := s.CrossoverBufBytes(); {
	case x < 0:
		fmt.Fprintln(w, "\nNo crossover within the swept sizes: hardening wins everywhere.")
	case x == s.Points[0].BufBytes:
		fmt.Fprintf(w, "\nFor sync2 the mechanism loses even at the smallest swept buffer: its\n")
		fmt.Fprintf(w, "runtime overhead stretches whatever unprotected long-lived data exists\n")
		fmt.Fprintf(w, "(§V-B), and the damage scales with the buffer share (r: %.1f -> %.1f).\n", first, last)
		fmt.Fprintln(w, "The coverage metric claims an improvement at every single point.")
	default:
		fmt.Fprintf(w, "\nCrossover at a %d-byte buffer: beyond it the unprotected long-lived\n", x)
		fmt.Fprintln(w, "data outweighs the protected kernel state and the mechanism's runtime")
		fmt.Fprintln(w, "overhead turns net-negative (§V-B) — while the coverage metric keeps")
		fmt.Fprintln(w, "claiming an improvement at every point.")
	}
	return nil
}

func mechanisms(w io.Writer, opts options) error {
	m, err := experiments.Mechanisms([]progs.Spec{
		progs.BinSem2(opts.binsemN),
		progs.Sort1(12),
	}, faultspace.ScanOptions{})
	if err != nil {
		return err
	}
	tbl := &report.Table{
		Title: "Comparing mechanisms with the paper's metric: SUM+DMR vs TMR",
		Headers: []string{"benchmark", "mechanism", "Δt overhead", "F baseline",
			"F hardened", "ratio r", "MWTF gain"},
	}
	for _, row := range m.Rows {
		for _, mech := range []struct {
			name string
			cmp  faultspace.Comparison
		}{{"SUM+DMR", row.SumDMR}, {"TMR", row.TMR}} {
			overhead := float64(mech.cmp.Hardened.RuntimeCycles) /
				float64(mech.cmp.Baseline.RuntimeCycles)
			tbl.AddRow(row.Name, mech.name,
				fmt.Sprintf("%.1fx", overhead),
				mech.cmp.Baseline.FailWeight, mech.cmp.Hardened.FailWeight,
				fmt.Sprintf("%.3f", mech.cmp.RatioWeighted),
				fmt.Sprintf("%.1fx", mech.cmp.MWTFGain))
		}
	}
	if err := renderTable(w, tbl, opts); err != nil {
		return err
	}

	// Double-fault robustness, side by side.
	dmr, err := experiments.MultiFault(faultspace.ScanOptions{})
	if err != nil {
		return err
	}
	tmr, err := experiments.MultiFaultTMR(faultspace.ScanOptions{})
	if err != nil {
		return err
	}
	mf := &report.Table{
		Title:   "Double-fault robustness (all 4560 pairs on one protected word)",
		Headers: []string{"mechanism", "single-fault failures", "pair failures", "pair failure rate"},
	}
	mf.AddRow("SUM+DMR", dmr.SingleFailures,
		dmr.PairFailures, fmt.Sprintf("%.1f%%", 100*dmr.FailureFraction()))
	mf.AddRow("TMR", tmr.SingleFailures,
		tmr.PairFailures, fmt.Sprintf("%.1f%%", 100*tmr.FailureFraction()))
	fmt.Fprintln(w)
	if err := renderTable(w, mf, opts); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nWith a sound comparison metric, the trade-off becomes quantitative:")
	fmt.Fprintln(w, "TMR's bitwise majority is far more robust to fault pairs and cheaper on")
	fmt.Fprintln(w, "store/check-heavy code, while SUM+DMR has the faster load path. Under")
	fmt.Fprintln(w, "the (irrelevant at real rates) double-fault model, only same-bit pairs")
	fmt.Fprintln(w, "in two copies defeat TMR.")
	return nil
}
