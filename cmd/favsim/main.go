// Command favsim assembles and executes fav32 programs on the
// deterministic simulator, for debugging benchmarks and inspecting golden
// runs.
//
// Usage:
//
//	favsim [flags] <benchmark | file.s>
//
// The positional argument is either a registered benchmark name (hi,
// bin_sem2, sync2, mbox1, clock1, preempt1, sort1) or a path to a fav32
// assembly file. Registered benchmarks can be run in any hardening
// variant; file programs must not use pld/pst and run as-is.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"faultspace"
	"faultspace/internal/harden"
	"faultspace/internal/isa"
	"faultspace/internal/machine"
	"faultspace/internal/progs"
	"faultspace/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "favsim:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("favsim", flag.ContinueOnError)
	var (
		variant   = fs.String("variant", "baseline", "baseline, sum+dmr, dft:N or dft2:N")
		disasm    = fs.Bool("disasm", false, "print the disassembled program before running")
		dumpTrace = fs.Bool("trace", false, "print the memory-access trace")
		maxCycles = fs.Uint64("max-cycles", 1<<22, "cycle budget for the run")
		binsemN   = fs.Int("binsem-rounds", 4, "bin_sem2 ping-pong rounds")
		syncN     = fs.Int("sync-rounds", 3, "sync2 handshake rounds")
		syncBuf   = fs.Int("sync-buf", 64, "sync2 message-buffer bytes")
		clockN    = fs.Int("clock-ticks", 6, "clock1 timer ticks")
		clockP    = fs.Uint64("clock-period", 64, "clock1 timer period (cycles)")
		mboxN     = fs.Int("mbox-messages", 6, "mbox1 messages")
		preemptN  = fs.Int("preempt-work", 40, "preempt1 work units per thread")
		preemptP  = fs.Uint64("preempt-period", 48, "preempt1 timer period (cycles)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("expected one benchmark name or assembly file")
	}

	prog, err := loadProgram(fs.Arg(0), *variant, progs.Sizes{
		BinSemRounds:  *binsemN,
		SyncRounds:    *syncN,
		SyncBufBytes:  *syncBuf,
		ClockTicks:    *clockN,
		ClockPeriod:   *clockP,
		MboxMessages:  *mboxN,
		PreemptWork:   *preemptN,
		PreemptPeriod: *preemptP,
	})
	if err != nil {
		return err
	}

	if *disasm {
		fmt.Fprintf(w, "; %s — %d instructions, %d bytes RAM, %d bytes data image\n",
			prog.Name, len(prog.Code), prog.RAMSize, len(prog.Image))
		fmt.Fprint(w, isa.Disassemble(prog.Code))
		fmt.Fprintln(w)
	}

	golden, err := trace.Record(prog.Name, faultspace.MachineConfig(prog),
		prog.Code, prog.Image, *maxCycles)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "program : %s\n", prog.Name)
	fmt.Fprintf(w, "status  : halted\n")
	fmt.Fprintf(w, "cycles  : %d (Δt)\n", golden.Cycles)
	fmt.Fprintf(w, "memory  : %d bytes = %d bits (Δm)\n", prog.RAMSize, golden.RAMBits)
	fmt.Fprintf(w, "space   : %d coordinates (w = Δt·Δm)\n", golden.SpaceSize())
	fmt.Fprintf(w, "accesses: %d RAM accesses traced\n", len(golden.Accesses))
	fmt.Fprintf(w, "output  : %q\n", golden.Serial)
	if golden.Detects+golden.Corrects > 0 {
		fmt.Fprintf(w, "signals : %d detections, %d corrections during the golden run\n",
			golden.Detects, golden.Corrects)
	}

	if *dumpTrace {
		fmt.Fprintln(w, "\ncycle  kind   addr  size")
		for _, a := range golden.Accesses {
			kind := "read "
			if a.Kind == machine.AccessWrite {
				kind = "write"
			}
			fmt.Fprintf(w, "%5d  %s  %#04x  %d\n", a.Cycle, kind, a.Addr, a.Size)
		}
	}
	return nil
}

// loadProgram resolves a registered benchmark (with variant) or assembles
// a file.
func loadProgram(arg, variant string, sizes progs.Sizes) (*faultspace.Program, error) {
	if strings.HasSuffix(arg, ".s") || strings.HasSuffix(arg, ".asm") {
		src, err := os.ReadFile(arg)
		if err != nil {
			return nil, err
		}
		return faultspace.AssembleSource(arg, string(src))
	}
	spec, err := progs.Resolve(arg, sizes)
	if err != nil {
		return nil, err
	}
	return buildVariant(spec, variant)
}

func buildVariant(spec progs.Spec, variant string) (*faultspace.Program, error) {
	switch {
	case variant == "baseline":
		return spec.Baseline()
	case variant == "sum+dmr" || variant == "sumdmr" || variant == "hardened":
		return spec.Hardened()
	case strings.HasPrefix(variant, "dft:"):
		n, err := strconv.Atoi(strings.TrimPrefix(variant, "dft:"))
		if err != nil {
			return nil, fmt.Errorf("bad dft count: %w", err)
		}
		return spec.WithVariant(harden.Dilution{NOPs: n})
	case strings.HasPrefix(variant, "dft2:"):
		n, err := strconv.Atoi(strings.TrimPrefix(variant, "dft2:"))
		if err != nil {
			return nil, fmt.Errorf("bad dft2 count: %w", err)
		}
		return spec.WithVariant(harden.DilutionLoads{Loads: n, Addrs: spec.DataAddrs})
	default:
		return nil, fmt.Errorf("unknown variant %q (baseline, sum+dmr, dft:N, dft2:N)", variant)
	}
}
