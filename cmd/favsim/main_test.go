package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runSim(t *testing.T, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(args, &sb); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return sb.String()
}

func TestRunHi(t *testing.T) {
	out := runSim(t, "hi")
	for _, want := range []string{`output  : "Hi"`, "cycles  : 8", "128 coordinates"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestDisasmAndTrace(t *testing.T) {
	out := runSim(t, "-disasm", "-trace", "hi")
	if !strings.Contains(out, "sbi 72, 0(r0)") {
		t.Errorf("disassembly missing:\n%s", out)
	}
	if !strings.Contains(out, "write") || !strings.Contains(out, "read ") {
		t.Errorf("trace missing:\n%s", out)
	}
}

func TestVariants(t *testing.T) {
	base := runSim(t, "-binsem-rounds", "2", "bin_sem2")
	hard := runSim(t, "-binsem-rounds", "2", "-variant", "sum+dmr", "bin_sem2")
	if base == hard {
		t.Error("variants produced identical reports")
	}
	if !strings.Contains(hard, "sum+dmr") {
		t.Errorf("hardened report missing variant name:\n%s", hard)
	}
	dft := runSim(t, "-variant", "dft:4", "hi")
	if !strings.Contains(dft, "cycles  : 12") {
		t.Errorf("DFT variant should run 12 cycles:\n%s", dft)
	}
	dft2 := runSim(t, "-variant", "dft2:4", "hi")
	if !strings.Contains(dft2, "cycles  : 12") {
		t.Errorf("DFT' variant should run 12 cycles:\n%s", dft2)
	}
}

func TestAssemblyFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "prog.s")
	src := `
        .ram 4
        .equ SERIAL, 0x10000
        li   r1, 'x'
        sb   r1, SERIAL(r0)
        halt
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runSim(t, path)
	if !strings.Contains(out, `output  : "x"`) {
		t.Errorf("file program output wrong:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"nonsense"}, &sb); err == nil {
		t.Error("unknown benchmark must fail")
	}
	if err := run([]string{"-variant", "bogus", "hi"}, &sb); err == nil {
		t.Error("unknown variant must fail")
	}
	if err := run([]string{"-variant", "dft:x", "hi"}, &sb); err == nil {
		t.Error("malformed dft count must fail")
	}
	if err := run([]string{}, &sb); err == nil {
		t.Error("missing argument must fail")
	}
	if err := run([]string{"/does/not/exist.s"}, &sb); err == nil {
		t.Error("missing file must fail")
	}
}
