// Command favscan runs fault-injection campaigns — complete fault-space
// scans or sampling campaigns — against the built-in benchmarks or a fav32
// assembly file, and reports the metrics of both worlds: the (unfit)
// fault-coverage factor and the paper's extrapolated absolute failure
// counts.
//
// Usage:
//
//	favscan [flags] <benchmark | file.s>
//
// Examples:
//
//	favscan -variant sum+dmr bin_sem2          # full scan
//	favscan -sample 10000 -seed 3 sync2        # correct raw sampling
//	favscan -sample 10000 -biased sync2        # Pitfall-2 sampling
//	favscan -csv -outcomes sync2               # per-class outcome dump
//
// Distributed campaigns shard a full scan across machines: a coordinator
// serves leased work units, workers pull and execute them, and the final
// report is byte-identical to a local scan (placement equivalence):
//
//	favscan -serve :9321 -checkpoint s2.ckpt sync2   # coordinator
//	favscan -join host:9321                          # worker (any machine)
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"time"

	"faultspace"
	"faultspace/internal/campaign"
	"faultspace/internal/harden"
	"faultspace/internal/progs"
	"faultspace/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "favscan:", err)
		os.Exit(1)
	}
}

// run executes one favscan invocation. Reports go to w (stdout); progress
// and checkpoint chatter go to errW (stderr), so a resumed campaign's
// stdout report stays byte-identical to an uninterrupted run's.
func run(args []string, w, errW io.Writer) error {
	fs := flag.NewFlagSet("favscan", flag.ContinueOnError)
	var (
		variant  = fs.String("variant", "baseline", "baseline, sum+dmr, dft:N or dft2:N")
		sample   = fs.Int("sample", 0, "draw N samples instead of a full scan")
		seed     = fs.Int64("seed", 1, "PRNG seed for sampling")
		biased   = fs.Bool("biased", false, "sample classes uniformly (Pitfall 2) instead of raw coordinates")
		effect   = fs.Bool("effective", false, "sample the reduced population w' (Corollary 1)")
		rerun    = fs.Bool("rerun", false, "use the rerun-from-start strategy instead of snapshot forking")
		strategy = fs.String("strategy", "", "experiment strategy: snapshot, rerun, ladder or fork (default snapshot)")
		ladderIv = fs.Uint64("ladder-interval", 0, "rung spacing in cycles for -strategy ladder or fork (0 = auto-tune)")
		predec   = fs.Bool("predecode", true, "execute via the pre-decoded dispatch stream (outcome-invariant; -predecode=false for the plain decoder)")
		memo     = fs.Bool("memo", false, "memoize experiment remainders across the campaign (outcome-invariant, invariant 11)")
		space    = fs.String("space", "memory", "fault space: memory, registers (§VI-B), skip, pc, burst2 or burst4")
		objFl    = fs.String("objective", "", "attacker objective evaluated on every outcome: bypass, corrupt or dos (default none)")
		workers  = fs.Int("workers", 0, "parallel experiment executors (0 = GOMAXPROCS)")
		serve    = fs.String("serve", "", "coordinate a distributed scan: serve work units on this address")
		join     = fs.String("join", "", "join a distributed scan as a worker of the coordinator at this address")
		submit   = fs.String("submit", "", "submit the campaign to the favserve service at this address, wait and report")
		tenant   = fs.String("tenant", "", "tenant id attributed to -submit for fair scheduling (default \"default\")")
		fleetFl  = fs.String("fleet", "", "join the favserve service at this address as a long-lived fleet worker")
		workerID = fs.String("worker-id", "", "worker name in cluster statistics (default w<pid>)")
		unitSize = fs.Int("unit-size", 0, "classes per leased work unit (coordinator; default 256)")
		leaseTTL = fs.Duration("lease", 0, "work-unit lease TTL before reassignment (coordinator; default 10s)")
		outcomes = fs.Bool("outcomes", false, "dump per-class outcomes (full scans only)")
		saveTo   = fs.String("save", "", "write the full-scan result as a JSON archive to this file")
		loadFrom = fs.String("load", "", "analyze a previously saved scan archive instead of scanning")
		csv      = fs.Bool("csv", false, "emit tables as CSV")
		ckpt     = fs.String("checkpoint", "", "stream completed experiments into this crash-safe checkpoint file")
		resume   = fs.Bool("resume", false, "continue the campaign recorded in -checkpoint (skip completed classes)")
		progress = fs.Bool("progress", false, "print live progress (classes done, exp/s, ETA) to stderr")
		telem    = fs.String("telemetry", "", "write a JSON run manifest (identity, config, counters, timing) to this file on exit")
		traceFl  = fs.String("trace", "", "write the campaign span timeline as Chrome trace-event JSON (Perfetto-loadable) to this file on exit")
		metricFl = fs.String("metrics", "", "expose the telemetry registry in Prometheus text format on this address at /metrics")
		pprofFl  = fs.Bool("pprof", false, "expose /debug/pprof profiling endpoints on the coordinator (requires -serve)")
		binsemN  = fs.Int("binsem-rounds", 4, "bin_sem2 ping-pong rounds")
		syncN    = fs.Int("sync-rounds", 3, "sync2 handshake rounds")
		syncBuf  = fs.Int("sync-buf", 64, "sync2 message-buffer bytes")
		clockN   = fs.Int("clock-ticks", 6, "clock1 timer ticks")
		clockP   = fs.Uint64("clock-period", 64, "clock1 timer period (cycles)")
		mboxN    = fs.Int("mbox-messages", 6, "mbox1 messages")
		preemptN = fs.Int("preempt-work", 40, "preempt1 work units per thread")
		preemptP = fs.Uint64("preempt-period", 48, "preempt1 timer period (cycles)")
		sortN    = fs.Int("sort-elements", 12, "sort1 array elements")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Validate enumerated flag values up front so a typo fails fast with
	// the valid options, not deep inside a campaign.
	spaceKind, err := parseSpace(*space)
	if err != nil {
		return err
	}
	if err := validObjective(*objFl); err != nil {
		return err
	}
	strat, err := parseStrategy(*strategy, *rerun)
	if err != nil {
		return err
	}
	if *ladderIv > 0 && strat != faultspace.StrategyLadder && strat != faultspace.StrategyFork {
		return fmt.Errorf("-ladder-interval requires -strategy ladder or fork")
	}
	if *resume && *ckpt == "" {
		return fmt.Errorf("-resume requires -checkpoint")
	}
	if *ckpt != "" && (*sample > 0 || *loadFrom != "") {
		return fmt.Errorf("-checkpoint applies to full scans only (not -sample or -load)")
	}
	if moreThanOne(*serve != "", *join != "", *submit != "", *fleetFl != "") {
		return fmt.Errorf("-serve, -join, -submit and -fleet are mutually exclusive")
	}
	if *submit != "" && (*sample > 0 || *loadFrom != "" || *ckpt != "" || *telem != "") {
		return fmt.Errorf("-submit hands the campaign to the service: it accepts no sampling, archive-load, checkpoint or telemetry flags")
	}
	if *tenant != "" && *submit == "" {
		return fmt.Errorf("-tenant requires -submit")
	}
	if *serve != "" && (*sample > 0 || *loadFrom != "") {
		return fmt.Errorf("-serve applies to full scans only (not -sample or -load)")
	}
	if *pprofFl && *serve == "" {
		return fmt.Errorf("-pprof requires -serve")
	}
	if *telem != "" && (*sample > 0 || *loadFrom != "" || *join != "") {
		return fmt.Errorf("-telemetry applies to full scans only (not -sample, -load or -join)")
	}
	if *traceFl != "" && (*sample > 0 || *loadFrom != "" || *join != "" || *fleetFl != "" || *submit != "") {
		return fmt.Errorf("-trace applies to local or served full scans only (workers ship their spans to the coordinator)")
	}
	if *metricFl != "" && (*loadFrom != "" || *submit != "") {
		return fmt.Errorf("-metrics requires a campaign executing in this process (not -load or -submit)")
	}

	if *join != "" {
		if fs.NArg() != 0 {
			return fmt.Errorf("-join takes no benchmark argument: the campaign comes from the coordinator's handshake")
		}
		if *sample > 0 || *loadFrom != "" || *saveTo != "" || *ckpt != "" || *outcomes {
			return fmt.Errorf("-join is a pure worker: it accepts no campaign, archive or checkpoint flags")
		}
		jopts := faultspace.JoinOptions{
			WorkerID:       *workerID,
			Workers:        *workers,
			Strategy:       strat,
			LadderInterval: *ladderIv,
			Predecode:      *predec,
			Memo:           *memo,
		}
		if *progress {
			jopts.Logf = func(format string, args ...any) {
				fmt.Fprintf(errW, format+"\n", args...)
			}
			jopts.Telemetry = faultspace.NewTelemetry()
		}
		if *metricFl != "" {
			if jopts.Telemetry == nil {
				jopts.Telemetry = faultspace.NewTelemetry()
			}
			stop, err := serveMetrics(*metricFl, jopts.Telemetry, errW)
			if err != nil {
				return err
			}
			defer stop()
		}
		err := faultspace.JoinScan(*join, jopts)
		printTelemetrySummary(errW, jopts.Telemetry)
		return err
	}

	if *fleetFl != "" {
		if fs.NArg() != 0 {
			return fmt.Errorf("-fleet takes no benchmark argument: campaigns are assigned by the service")
		}
		if *sample > 0 || *loadFrom != "" || *saveTo != "" || *ckpt != "" || *outcomes {
			return fmt.Errorf("-fleet is a pure worker: it accepts no campaign, archive or checkpoint flags")
		}
		fopts := faultspace.FleetOptions{JoinOptions: faultspace.JoinOptions{
			WorkerID:       *workerID,
			Workers:        *workers,
			Strategy:       strat,
			LadderInterval: *ladderIv,
			Predecode:      *predec,
			Memo:           *memo,
		}}
		if *progress {
			fopts.Logf = func(format string, args ...any) {
				fmt.Fprintf(errW, format+"\n", args...)
			}
			fopts.Telemetry = faultspace.NewTelemetry()
		}
		if *metricFl != "" {
			if fopts.Telemetry == nil {
				fopts.Telemetry = faultspace.NewTelemetry()
			}
			stop, err := serveMetrics(*metricFl, fopts.Telemetry, errW)
			if err != nil {
				return err
			}
			defer stop()
		}
		err := faultspace.JoinServiceFleet(*fleetFl, fopts)
		printTelemetrySummary(errW, fopts.Telemetry)
		return err
	}

	if *loadFrom != "" {
		if fs.NArg() != 0 {
			return fmt.Errorf("-load takes no benchmark argument")
		}
		f, err := os.Open(*loadFrom)
		if err != nil {
			return err
		}
		defer f.Close()
		scan, err := faultspace.LoadScan(f)
		if err != nil {
			return err
		}
		a, err := faultspace.Analyze(scan)
		if err != nil {
			return err
		}
		if err := printAnalysis(w, a, *csv); err != nil {
			return err
		}
		if *outcomes {
			return printOutcomes(w, scan, *csv)
		}
		return nil
	}

	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("expected one benchmark name or assembly file")
	}

	prog, err := loadProgram(fs.Arg(0), *variant, progs.Sizes{
		BinSemRounds:  *binsemN,
		SyncRounds:    *syncN,
		SyncBufBytes:  *syncBuf,
		ClockTicks:    *clockN,
		ClockPeriod:   *clockP,
		MboxMessages:  *mboxN,
		PreemptWork:   *preemptN,
		PreemptPeriod: *preemptP,
		SortElements:  *sortN,
	})
	if err != nil {
		return err
	}
	opts := faultspace.ScanOptions{
		Workers:        *workers,
		Strategy:       strat,
		LadderInterval: *ladderIv,
		Predecode:      *predec,
		Memo:           *memo,
		Space:          spaceKind,
		Objective:      *objFl,
	}
	if *progress {
		opts.OnProgress = progressPrinter(errW)
	}
	// One registry serves all three observability surfaces: the run
	// manifest (-telemetry), the summary table (-progress) and, under
	// -serve, the coordinator's /v1/status and /debug/telemetry
	// endpoints. Telemetry never changes outcomes (invariant 10), so
	// attaching it unconditionally here would be harmless — but keeping
	// it nil unless asked for preserves the zero-overhead default.
	var reg *faultspace.Telemetry
	if *telem != "" || *progress || *traceFl != "" || *metricFl != "" {
		reg = faultspace.NewTelemetry()
		reg.EnableTrace(1024)
		opts.Telemetry = reg
	}
	// Span tracing attaches a recorder to the registry. Locally the scan
	// records phase spans into it directly; under -serve the coordinator
	// reuses the same recorder and merges every worker's spans into it,
	// so the file written at exit is the whole fleet's timeline.
	if *traceFl != "" {
		reg.EnableSpans(faultspace.NewTraceID(), "local", 0)
	}
	if *metricFl != "" {
		stop, err := serveMetrics(*metricFl, reg, errW)
		if err != nil {
			return err
		}
		defer stop()
	}

	if *sample > 0 {
		sr, err := faultspace.Sample(prog, faultspace.SampleOptions{
			ScanOptions: opts,
			N:           *sample,
			Seed:        *seed,
			Biased:      *biased,
			Effective:   *effect,
		})
		if err != nil {
			return err
		}
		if err := printSample(w, prog.Name, sr, *csv); err != nil {
			return err
		}
		printTelemetrySummary(errW, reg)
		return nil
	}

	// The manifest is stamped before the scan so StartedAt covers the
	// whole campaign, and written after it returns — the graceful SIGINT
	// path resolves through the same code, so an interrupted run still
	// leaves a (partial, marked Interrupted) manifest behind.
	var manifest *faultspace.RunManifest
	if *telem != "" {
		id, err := faultspace.CampaignIdentity(prog, opts)
		if err != nil {
			return err
		}
		manifest = &faultspace.RunManifest{
			Tool:      "favscan",
			StartedAt: time.Now(),
			Benchmark: prog.Name,
			Identity:  fmt.Sprintf("%x", id),
			Space:     spaceKind.String(),
			Strategy:  strat.String(),
			Workers:   *workers,
		}
		if manifest.Workers == 0 {
			manifest.Workers = runtime.GOMAXPROCS(0)
		}
	}

	if *ckpt != "" || *serve != "" {
		opts.Checkpoint = *ckpt
		opts.Resume = *resume
		// Graceful SIGINT: stop feeding experiments, let in-flight ones
		// finish, flush the checkpoint, then exit non-zero.
		intCh := make(chan struct{})
		doneCh := make(chan struct{})
		sigCh := make(chan os.Signal, 1)
		signal.Notify(sigCh, os.Interrupt)
		defer signal.Stop(sigCh)
		defer close(doneCh)
		go func() {
			select {
			case <-sigCh:
				fmt.Fprintln(errW, "favscan: interrupt — flushing checkpoint")
				close(intCh)
			case <-doneCh:
			}
		}()
		opts.Interrupt = intCh
	}

	var scan *faultspace.ScanResult
	if *submit != "" {
		scan, err = submitAndFetch(errW, *submit, *tenant, prog, opts)
	} else if *serve != "" {
		sopts := faultspace.ServeOptions{
			ScanOptions: opts,
			UnitSize:    *unitSize,
			LeaseTTL:    *leaseTTL,
			Pprof:       *pprofFl,
			OnListen: func(addr string) {
				fmt.Fprintf(errW, "favscan: serving campaign on %s\n", addr)
			},
		}
		if *progress {
			sopts.OnProgress = nil
			sopts.OnClusterProgress = clusterProgressPrinter(errW)
		}
		scan, err = faultspace.ServeScan(prog, *serve, sopts)
	} else {
		scan, err = faultspace.Scan(prog, opts)
	}
	if *progress {
		printTelemetrySummary(errW, reg)
	}
	if manifest != nil {
		if scan != nil {
			manifest.Classes = len(scan.Space.Classes)
		}
		manifest.Interrupted = errors.Is(err, faultspace.ErrInterrupted)
		manifest.Finish(reg)
		if werr := manifest.WriteFile(*telem); werr != nil {
			fmt.Fprintf(errW, "favscan: telemetry manifest: %v\n", werr)
		} else {
			fmt.Fprintf(errW, "favscan: run manifest written to %s\n", *telem)
		}
	}
	// Like the manifest, the timeline is written on the interrupt path
	// too: a partial trace of an aborted campaign is exactly what you
	// load into Perfetto to see where it spent its time.
	if *traceFl != "" {
		if werr := writeTraceFile(*traceFl, reg); werr != nil {
			fmt.Fprintf(errW, "favscan: trace: %v\n", werr)
		} else {
			fmt.Fprintf(errW, "favscan: span timeline written to %s (load in ui.perfetto.dev)\n", *traceFl)
		}
	}
	if err != nil {
		if errors.Is(err, faultspace.ErrInterrupted) {
			if *ckpt == "" {
				return fmt.Errorf("scan interrupted")
			}
			return fmt.Errorf("scan interrupted; progress saved to %s — rerun with -resume to continue", *ckpt)
		}
		return err
	}
	if *saveTo != "" {
		f, err := os.Create(*saveTo)
		if err != nil {
			return err
		}
		if err := faultspace.SaveScan(f, scan); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "scan archive written to %s\n\n", *saveTo)
	}
	a, err := faultspace.Analyze(scan)
	if err != nil {
		return err
	}
	if err := printAnalysis(w, a, *csv); err != nil {
		return err
	}
	if *outcomes {
		return printOutcomes(w, scan, *csv)
	}
	return nil
}

// moreThanOne reports whether more than one mode flag is set.
func moreThanOne(flags ...bool) bool {
	n := 0
	for _, f := range flags {
		if f {
			n++
		}
	}
	return n > 1
}

// submitAndFetch ships the campaign to a favserve service, waits for a
// terminal state and fetches the report — which is byte-identical to a
// local scan's whether the service executed the campaign or answered
// from its archive (invariant 12).
func submitAndFetch(errW io.Writer, addr, tenant string, prog *faultspace.Program, opts faultspace.ScanOptions) (*faultspace.ScanResult, error) {
	info, err := faultspace.SubmitCampaign(addr, prog, opts, tenant)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(errW, "favscan: campaign %.12s %s (tenant %s)\n", info.ID, info.State, info.Tenant)
	if !info.Terminal() {
		if info, err = faultspace.WaitCampaign(addr, info.ID, 0, nil); err != nil {
			return nil, err
		}
	}
	switch {
	case info.State == "failed":
		return nil, fmt.Errorf("campaign failed: %s", info.Error)
	case info.State != "done":
		return nil, fmt.Errorf("campaign %s", info.State)
	}
	if info.Cached {
		fmt.Fprintln(errW, "favscan: served from the service archive — no experiments executed")
	}
	return faultspace.CampaignReport(addr, info.ID)
}

// parseSpace validates the -space flag value, failing fast with the
// valid options on a typo.
func parseSpace(s string) (faultspace.SpaceKind, error) {
	switch s {
	case "memory", "mem", "":
		return faultspace.SpaceMemory, nil
	case "registers", "regs":
		return faultspace.SpaceRegisters, nil
	case "skip":
		return faultspace.SpaceSkip, nil
	case "pc":
		return faultspace.SpacePC, nil
	case "burst2":
		return faultspace.SpaceBurst2, nil
	case "burst4":
		return faultspace.SpaceBurst4, nil
	default:
		return 0, fmt.Errorf("unknown fault space %q (valid: memory, registers, skip, pc, burst2, burst4)", s)
	}
}

// validObjective validates the -objective flag value, failing fast with
// the valid names on a typo.
func validObjective(name string) error {
	if name == "" {
		return nil
	}
	for _, n := range faultspace.ObjectiveNames() {
		if n == name {
			return nil
		}
	}
	return fmt.Errorf("unknown objective %q (valid: %s)", name, strings.Join(faultspace.ObjectiveNames(), ", "))
}

// parseStrategy validates the -strategy flag value and reconciles it
// with the legacy -rerun boolean.
func parseStrategy(s string, rerun bool) (faultspace.Strategy, error) {
	switch s {
	case "":
		if rerun {
			return faultspace.StrategyRerun, nil
		}
		return faultspace.StrategySnapshot, nil
	case "snapshot":
		if rerun {
			return 0, fmt.Errorf("-strategy snapshot contradicts -rerun")
		}
		return faultspace.StrategySnapshot, nil
	case "rerun":
		return faultspace.StrategyRerun, nil
	case "ladder":
		if rerun {
			return 0, fmt.Errorf("-strategy ladder contradicts -rerun")
		}
		return faultspace.StrategyLadder, nil
	case "fork":
		if rerun {
			return 0, fmt.Errorf("-strategy fork contradicts -rerun")
		}
		return faultspace.StrategyFork, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q (valid: snapshot, rerun, ladder, fork)", s)
	}
}

// clusterProgressPrinter renders the coordinator's cluster progress
// stream on errW: one summary line per event plus one line per worker.
func clusterProgressPrinter(errW io.Writer) func(faultspace.ClusterProgress) {
	return func(p faultspace.ClusterProgress) {
		pct := 100.0
		if p.Total > 0 {
			pct = 100 * float64(p.Done) / float64(p.Total)
		}
		if p.Final {
			fmt.Fprintf(errW, "cluster scan finished: %d/%d classes (%.1f%%), %d merged this session in %s (%.0f exp/s), %d workers, %d reassigned, %d failure classes\n",
				p.Done, p.Total, pct, p.Session, p.Elapsed.Round(time.Millisecond), p.Rate, len(p.Workers), p.Reassignments, p.Failures())
			return
		}
		fmt.Fprintf(errW, "cluster: %d/%d classes (%.1f%%)  %.0f exp/s  ETA %s  leases %d  reassigned %d  failures %d\n",
			p.Done, p.Total, pct, p.Rate, p.ETA.Round(time.Second), p.OutstandingLeases, p.Reassignments, p.Failures())
		for _, ws := range p.Workers {
			fmt.Fprintf(errW, "  worker %s: %d experiments (%.0f exp/s), %d merged, %d leases\n",
				ws.ID, ws.Experiments, ws.Rate, ws.Merged, ws.Outstanding)
		}
	}
}

// serveMetrics exposes the registry's snapshot in Prometheus text format
// at /metrics on addr for the duration of the run. The returned stop
// function closes the listener.
func serveMetrics(addr string, reg *faultspace.Telemetry, errW io.Writer) (func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("-metrics: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = faultspace.WritePrometheus(w, reg.Snapshot(), nil)
	})
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	fmt.Fprintf(errW, "favscan: serving /metrics on %s\n", ln.Addr())
	return ln.Close, nil
}

// writeTraceFile exports the registry's span recorder as Chrome
// trace-event JSON.
func writeTraceFile(path string, reg *faultspace.Telemetry) error {
	rec := reg.SpanRecorder()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := faultspace.WriteChromeTrace(f, rec.TraceID(), rec.Spans()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// printTelemetrySummary renders the registry's final instrument snapshot
// as a table on the progress stream (stderr), keeping stdout reports
// byte-identical with and without telemetry. A nil registry prints
// nothing.
func printTelemetrySummary(errW io.Writer, reg *faultspace.Telemetry) {
	snap := reg.Snapshot()
	if len(snap.Counters) == 0 && len(snap.Gauges) == 0 && len(snap.Histograms) == 0 {
		return
	}
	tbl := &report.Table{
		Title:   "Telemetry",
		Headers: []string{"metric", "value"},
	}
	for _, name := range snap.CounterNames() {
		tbl.AddRow(name, snap.Counters[name])
	}
	for _, name := range snap.GaugeNames() {
		tbl.AddRow(name, snap.Gauges[name])
	}
	for _, name := range snap.HistogramNames() {
		h := snap.Histograms[name]
		var mean time.Duration
		if h.Count > 0 {
			mean = time.Duration(h.SumNs / int64(h.Count))
		}
		tbl.AddRow(name, fmt.Sprintf("n=%d mean=%s p50=%s p95=%s p99=%s max=%s",
			h.Count, mean.Round(time.Microsecond),
			time.Duration(h.P50Ns).Round(time.Microsecond),
			time.Duration(h.P95Ns).Round(time.Microsecond),
			time.Duration(h.P99Ns).Round(time.Microsecond),
			time.Duration(h.MaxNs).Round(time.Microsecond)))
	}
	fmt.Fprintln(errW)
	tbl.Render(errW)
}

// progressPrinter renders the scan's progress stream as single lines on
// errW: running counts while scanning, and a final summary line.
func progressPrinter(errW io.Writer) func(faultspace.Progress) {
	return func(p faultspace.Progress) {
		pct := 100.0
		if p.Total > 0 {
			pct = 100 * float64(p.Done) / float64(p.Total)
		}
		if p.Final {
			fmt.Fprintf(errW, "scan finished: %d/%d classes (%.1f%%), %d run this session in %s (%.0f exp/s), %d failure classes\n",
				p.Done, p.Total, pct, p.Session, p.Elapsed.Round(time.Millisecond), p.Rate, p.Failures())
			return
		}
		fmt.Fprintf(errW, "progress: %d/%d classes (%.1f%%)  %.0f exp/s  ETA %s  failures %d\n",
			p.Done, p.Total, pct, p.Rate, p.ETA.Round(time.Second), p.Failures())
	}
}

func printAnalysis(w io.Writer, a faultspace.Analysis, csv bool) error {
	tbl := &report.Table{
		Title:   fmt.Sprintf("Full fault-space scan: %s [%s space]", a.Name, a.Space),
		Headers: []string{"metric", "value"},
	}
	tbl.AddRow("runtime Δt (cycles)", a.RuntimeCycles)
	tbl.AddRow("memory Δm (bits)", a.MemoryBits)
	tbl.AddRow("fault-space size w", a.SpaceSize)
	tbl.AddRow("experiments (def/use classes)", a.Classes)
	tbl.AddRow("known No Effect (pruned)", a.KnownNoEffect)
	tbl.AddRow("failures, weighted (the paper's F)", a.FailWeight)
	tbl.AddRow("failures, unweighted classes", a.FailClasses)
	if a.AttackClasses > 0 || a.AttackWeight > 0 {
		tbl.AddRow("attack successes, weighted", a.AttackWeight)
		tbl.AddRow("attack successes, unweighted classes", a.AttackClasses)
	}
	tbl.AddRow("coverage, weighted", fmt.Sprintf("%.4f", a.CoverageWeighted))
	tbl.AddRow("coverage, unweighted (Pitfall 1)", fmt.Sprintf("%.4f", a.CoverageUnweighted))
	tbl.AddRow("coverage, activated-only", fmt.Sprintf("%.4f", a.CoverageActivatedOnly))
	if csv {
		if err := tbl.RenderCSV(w); err != nil {
			return err
		}
	} else if err := tbl.Render(w); err != nil {
		return err
	}

	out := &report.Table{
		Title:   "Outcome distribution (weighted over the full fault space)",
		Headers: []string{"outcome", "classes", "weighted", "share"},
	}
	for o := 0; o < campaign.NumOutcomes; o++ {
		if a.WeightedCounts[o] == 0 && a.ClassCounts[o] == 0 {
			continue
		}
		out.AddRow(campaign.Outcome(o).String(), a.ClassCounts[o], a.WeightedCounts[o],
			fmt.Sprintf("%.2f%%", 100*float64(a.WeightedCounts[o])/float64(a.SpaceSize)))
	}
	fmt.Fprintln(w)
	if csv {
		return out.RenderCSV(w)
	}
	return out.Render(w)
}

func printSample(w io.Writer, name string, sr *campaign.SampleResult, csv bool) error {
	tbl := &report.Table{
		Title: fmt.Sprintf("Sampling campaign: %s (mode %s, N=%d, seed=%d)",
			name, sr.Mode, sr.N, sr.Seed),
		Headers: []string{"metric", "value"},
	}
	tbl.AddRow("population", sr.Population)
	tbl.AddRow("experiments executed", sr.Experiments)
	tbl.AddRow("sampled failures", sr.Failures())
	tbl.AddRow("extrapolated failures (Corollary 2)", fmt.Sprintf("%.1f", sr.ExtrapolatedFailures()))
	if sr.Attacks > 0 {
		tbl.AddRow("sampled attack successes", sr.Attacks)
	}
	for o := 0; o < campaign.NumOutcomes; o++ {
		if sr.Counts[o] > 0 {
			tbl.AddRow("  "+campaign.Outcome(o).String(), sr.Counts[o])
		}
	}
	if csv {
		return tbl.RenderCSV(w)
	}
	return tbl.Render(w)
}

func printOutcomes(w io.Writer, scan *faultspace.ScanResult, csv bool) error {
	tbl := &report.Table{
		Title:   "Per-class outcomes",
		Headers: []string{"slot", "bit", "defCycle", "weight", "outcome"},
	}
	for i, c := range scan.Space.Classes {
		tbl.AddRow(c.Slot(), c.Bit, c.DefCycle, c.Weight(), scan.Outcomes[i].String())
	}
	fmt.Fprintln(w)
	if csv {
		return tbl.RenderCSV(w)
	}
	return tbl.Render(w)
}

// loadProgram and buildVariant mirror favsim; kept local so each tool
// stays a single self-contained file.
func loadProgram(arg, variant string, sizes progs.Sizes) (*faultspace.Program, error) {
	if strings.HasSuffix(arg, ".s") || strings.HasSuffix(arg, ".asm") {
		src, err := os.ReadFile(arg)
		if err != nil {
			return nil, err
		}
		return faultspace.AssembleSource(arg, string(src))
	}
	spec, err := progs.Resolve(arg, sizes)
	if err != nil {
		return nil, err
	}
	switch {
	case variant == "baseline":
		return spec.Baseline()
	case variant == "sum+dmr" || variant == "sumdmr" || variant == "hardened":
		return spec.Hardened()
	case strings.HasPrefix(variant, "dft:"):
		n, err := strconv.Atoi(strings.TrimPrefix(variant, "dft:"))
		if err != nil {
			return nil, fmt.Errorf("bad dft count: %w", err)
		}
		return spec.WithVariant(harden.Dilution{NOPs: n})
	case strings.HasPrefix(variant, "dft2:"):
		n, err := strconv.Atoi(strings.TrimPrefix(variant, "dft2:"))
		if err != nil {
			return nil, fmt.Errorf("bad dft2 count: %w", err)
		}
		return spec.WithVariant(harden.DilutionLoads{Loads: n, Addrs: spec.DataAddrs})
	default:
		return nil, fmt.Errorf("unknown variant %q (baseline, sum+dmr, dft:N, dft2:N)", variant)
	}
}
