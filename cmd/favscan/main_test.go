package main

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"faultspace"
	"faultspace/internal/checkpoint"
)

// TestMain doubles the test binary as the favscan executable: with
// FAVSCAN_CHILD=1 it runs a real favscan invocation instead of the test
// suite, so the kill/resume test can SIGINT an actual child process.
func TestMain(m *testing.M) {
	if os.Getenv("FAVSCAN_CHILD") == "1" {
		if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "favscan:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func runScan(t *testing.T, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(args, &sb, io.Discard); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return sb.String()
}

func TestFullScanHi(t *testing.T) {
	out := runScan(t, "hi")
	for _, want := range []string{
		"fault-space size w", "128",
		"failures, weighted (the paper's F)", "48",
		"coverage, weighted", "0.6250",
		"SDC",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestOutcomeDump(t *testing.T) {
	out := runScan(t, "-outcomes", "hi")
	if !strings.Contains(out, "Per-class outcomes") {
		t.Fatalf("missing outcome dump:\n%s", out)
	}
	// 16 classes plus headers.
	if got := strings.Count(out, "SDC"); got < 16 {
		t.Errorf("expected >= 16 SDC rows, got %d", got)
	}
}

func TestSamplingModes(t *testing.T) {
	raw := runScan(t, "-sample", "300", "-seed", "2", "hi")
	if !strings.Contains(raw, "mode raw") || !strings.Contains(raw, "extrapolated failures") {
		t.Errorf("raw sampling output wrong:\n%s", raw)
	}
	biased := runScan(t, "-sample", "300", "-biased", "hi")
	if !strings.Contains(biased, "classes(biased)") {
		t.Errorf("biased sampling output wrong:\n%s", biased)
	}
	eff := runScan(t, "-sample", "300", "-effective", "hi")
	if !strings.Contains(eff, "mode effective") {
		t.Errorf("effective sampling output wrong:\n%s", eff)
	}
}

func TestRerunStrategyFlag(t *testing.T) {
	a := runScan(t, "hi")
	b := runScan(t, "-rerun", "hi")
	if a != b {
		t.Error("rerun strategy must not change scan results")
	}
}

func TestCSV(t *testing.T) {
	out := runScan(t, "-csv", "hi")
	if !strings.Contains(out, "metric,value") {
		t.Errorf("CSV output wrong:\n%s", out)
	}
}

func TestSaveAndLoadArchive(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "hi.scan.json")
	saved := runScan(t, "-save", path, "hi")
	if !strings.Contains(saved, "archive written") {
		t.Fatalf("save output wrong:\n%s", saved)
	}
	loaded := runScan(t, "-load", path)
	for _, want := range []string{"hi/baseline", "128", "48", "0.6250"} {
		if !strings.Contains(loaded, want) {
			t.Errorf("loaded analysis missing %q:\n%s", want, loaded)
		}
	}
	var sb strings.Builder
	if err := run([]string{"-load", path, "hi"}, &sb, io.Discard); err == nil {
		t.Error("-load with a benchmark argument must fail")
	}
	if err := run([]string{"-load", filepath.Join(dir, "missing.json")}, &sb, io.Discard); err == nil {
		t.Error("-load of a missing file must fail")
	}
}

func TestCheckpointFlagValidation(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-resume", "hi"}, &sb, io.Discard); err == nil {
		t.Error("-resume without -checkpoint must fail")
	}
	ck := filepath.Join(t.TempDir(), "c.ckpt")
	if err := run([]string{"-checkpoint", ck, "-sample", "10", "hi"}, &sb, io.Discard); err == nil {
		t.Error("-checkpoint with -sample must fail")
	}
	if err := run([]string{"-checkpoint", ck, "-load", "x.json"}, &sb, io.Discard); err == nil {
		t.Error("-checkpoint with -load must fail")
	}
}

func TestProgressOutput(t *testing.T) {
	var out, prog strings.Builder
	if err := run([]string{"-progress", "hi"}, &out, &prog); err != nil {
		t.Fatal(err)
	}
	p := prog.String()
	if !strings.Contains(p, "progress: 0/16 classes") {
		t.Errorf("missing initial progress line:\n%s", p)
	}
	if !strings.Contains(p, "scan finished: 16/16 classes (100.0%)") {
		t.Errorf("missing final summary line:\n%s", p)
	}
	if strings.Contains(out.String(), "progress") {
		t.Error("progress chatter leaked into the stdout report")
	}
}

// TestCheckpointCreateThenResume exercises the checkpoint path without a
// kill: a completed campaign's checkpoint resumes as a no-op with a
// byte-identical report, a fresh -checkpoint refuses to overwrite it, and
// -resume with a different program is rejected by the identity hash.
func TestCheckpointCreateThenResume(t *testing.T) {
	ck := filepath.Join(t.TempDir(), "hi.ckpt")
	first := runScan(t, "-checkpoint", ck, "hi")
	resumed := runScan(t, "-checkpoint", ck, "-resume", "hi")
	if first != resumed {
		t.Errorf("no-op resume changed the report:\n--- first ---\n%s--- resumed ---\n%s", first, resumed)
	}
	var sb strings.Builder
	if err := run([]string{"-checkpoint", ck, "hi"}, &sb, io.Discard); err == nil {
		t.Error("-checkpoint must refuse an existing file without -resume")
	}
	if err := run([]string{"-checkpoint", ck, "-resume", "sort1"}, &sb, io.Discard); err == nil {
		t.Error("-resume with a different campaign must fail the identity check")
	}
}

// TestKillAndResumeByteIdentical is the acceptance test for crash-safe
// campaigns: a real favscan child process is interrupted with SIGINT
// mid-scan, then the campaign is resumed from its checkpoint, and the
// resumed report must be byte-identical to an uninterrupted run's. The
// child scans with the slow rerun strategy so the interrupt reliably
// lands mid-run; the resume switches back to the snapshot strategy,
// which the campaign identity deliberately permits.
func TestKillAndResumeByteIdentical(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("relies on SIGINT delivery")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	ck := filepath.Join(t.TempDir(), "sort1.ckpt")
	campaign := []string{"-workers", "1", "-sort-elements", "48", "sort1"}

	child := exec.Command(exe, append([]string{"-checkpoint", ck, "-progress", "-rerun"}, campaign...)...)
	child.Env = append(os.Environ(), "FAVSCAN_CHILD=1")
	var childErr strings.Builder
	child.Stdout = io.Discard
	child.Stderr = &childErr
	if err := child.Start(); err != nil {
		t.Fatal(err)
	}
	// Wait until at least one record frame has been flushed (the header
	// alone is 61 bytes; a flushed frame adds hundreds), then interrupt.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if fi, err := os.Stat(ck); err == nil && fi.Size() > 200 {
			break
		}
		if time.Now().After(deadline) {
			child.Process.Kill()
			t.Fatalf("checkpoint never grew past its header; child stderr:\n%s", childErr.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := child.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	if err := child.Wait(); err == nil {
		t.Fatalf("child completed before the interrupt landed; stderr:\n%s", childErr.String())
	}
	if !strings.Contains(childErr.String(), "interrupt") {
		t.Errorf("child stderr does not mention the interrupt:\n%s", childErr.String())
	}

	h, prior, err := checkpoint.Load(ck)
	if err != nil {
		t.Fatalf("checkpoint after SIGINT must be valid: %v", err)
	}
	if len(prior) == 0 || uint64(len(prior)) >= h.Classes {
		t.Fatalf("checkpoint holds %d/%d classes, want a proper partial campaign", len(prior), h.Classes)
	}
	t.Logf("child interrupted after %d/%d classes", len(prior), h.Classes)

	resumed := runScan(t, append([]string{"-checkpoint", ck, "-resume"}, campaign...)...)
	reference := runScan(t, campaign...)
	if resumed != reference {
		t.Errorf("resumed report differs from uninterrupted run:\n--- resumed ---\n%s--- reference ---\n%s",
			resumed, reference)
	}
}

// TestFlagValidationUpfront: enumerated and mutually-exclusive flags must
// fail before any campaign work starts, with errors that name the valid
// options.
func TestFlagValidationUpfront(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-space", "cache", "hi"}, "valid: memory, registers"},
		{[]string{"-strategy", "quantum", "hi"}, "valid: snapshot, rerun, ladder, fork"},
		{[]string{"-strategy", "snapshot", "-rerun", "hi"}, "contradicts"},
		{[]string{"-strategy", "ladder", "-rerun", "hi"}, "contradicts"},
		{[]string{"-strategy", "fork", "-rerun", "hi"}, "contradicts"},
		{[]string{"-ladder-interval", "64", "hi"}, "requires -strategy ladder or fork"},
		{[]string{"-ladder-interval", "64", "-strategy", "rerun", "hi"}, "requires -strategy ladder or fork"},
		{[]string{"-serve", ":0", "-join", "x:1", "hi"}, "mutually exclusive"},
		{[]string{"-serve", ":0", "-sample", "10", "hi"}, "full scans only"},
		{[]string{"-join", "x:1", "hi"}, "no benchmark argument"},
		{[]string{"-join", "x:1", "-checkpoint", "c.ckpt"}, "pure worker"},
		{[]string{"-pprof", "hi"}, "requires -serve"},
		{[]string{"-telemetry", "t.json", "-sample", "10", "hi"}, "full scans only"},
		{[]string{"-telemetry", "t.json", "-load", "x.json"}, "full scans only"},
		{[]string{"-telemetry", "t.json", "-join", "x:1"}, "full scans only"},
	} {
		err := run(tc.args, io.Discard, io.Discard)
		if err == nil {
			t.Errorf("run(%v): expected an error mentioning %q", tc.args, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("run(%v): error %q does not mention %q", tc.args, err, tc.want)
		}
	}
	// Strategy flag accepts its valid values, and none of them (nor the
	// ladder rung spacing) may change the scan report.
	a := runScan(t, "-strategy", "snapshot", "hi")
	b := runScan(t, "-strategy", "rerun", "hi")
	if a != b {
		t.Error("-strategy must not change scan results")
	}
	c := runScan(t, "-strategy", "ladder", "hi")
	if a != c {
		t.Error("-strategy ladder must not change scan results")
	}
	d := runScan(t, "-strategy", "ladder", "-ladder-interval", "3", "hi")
	if a != d {
		t.Error("-ladder-interval must not change scan results")
	}
}

// addrWatcher tees a coordinator's stderr, announcing the "serving
// campaign on <addr>" listen address on a channel as soon as it appears.
// Safe for concurrent writes (exec.Cmd copies pipes from a goroutine).
type addrWatcher struct {
	mu   sync.Mutex
	buf  strings.Builder
	ch   chan string
	sent bool
}

func newAddrWatcher() *addrWatcher { return &addrWatcher{ch: make(chan string, 1)} }

func (w *addrWatcher) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf.Write(p)
	if !w.sent {
		const marker = "serving campaign on "
		s := w.buf.String()
		if i := strings.Index(s, marker); i >= 0 {
			if j := strings.IndexByte(s[i:], '\n'); j >= 0 {
				w.ch <- strings.TrimSpace(s[i+len(marker) : i+j])
				w.sent = true
			}
		}
	}
	return len(p), nil
}

func (w *addrWatcher) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

func (w *addrWatcher) awaitAddr(t *testing.T) string {
	t.Helper()
	select {
	case addr := <-w.ch:
		return addr
	case <-time.After(30 * time.Second):
		t.Fatalf("coordinator never announced its address; stderr:\n%s", w.String())
		return ""
	}
}

// serveWithWorkers runs `favscan -serve` in-process with nWorkers
// in-process `-join` workers over loopback and returns the coordinator's
// stdout report.
func serveWithWorkers(t *testing.T, serveArgs []string, nWorkers int) string {
	t.Helper()
	aw := newAddrWatcher()
	var out strings.Builder
	serveDone := make(chan error, 1)
	go func() {
		serveDone <- run(append([]string{"-serve", "127.0.0.1:0"}, serveArgs...), &out, aw)
	}()
	addr := aw.awaitAddr(t)
	var wg sync.WaitGroup
	for i := 0; i < nWorkers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Mixed strategies across the cluster: outcomes must not
			// depend on which strategy which worker runs.
			args := []string{"-join", addr, "-worker-id", fmt.Sprintf("w%d", i)}
			switch i % 3 {
			case 1:
				args = append(args, "-strategy", "rerun")
			case 2:
				args = append(args, "-strategy", "ladder")
			}
			if err := run(args, io.Discard, io.Discard); err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
		}(i)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}
	wg.Wait()
	return out.String()
}

// TestClusterServeJoinByteIdentical: a favscan coordinator with two
// favscan workers over loopback must print the exact report of a local
// run — placement equivalence, end to end through the CLI.
func TestClusterServeJoinByteIdentical(t *testing.T) {
	campaignArgs := []string{"-sort-elements", "8", "sort1"}
	reference := runScan(t, campaignArgs...)
	distributed := serveWithWorkers(t, append([]string{"-unit-size", "8"}, campaignArgs...), 2)
	if distributed != reference {
		t.Errorf("distributed report differs from local run:\n--- distributed ---\n%s--- local ---\n%s",
			distributed, reference)
	}
}

// TestClusterKillCoordinatorAndResume is the distributed acceptance test:
// a real favscan coordinator child process is SIGINT-killed mid-campaign
// while an in-process worker executes its units, then a fresh coordinator
// resumes from the checkpoint and the final report must be byte-identical
// to an uninterrupted local run.
func TestClusterKillCoordinatorAndResume(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("relies on SIGINT delivery")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	ck := filepath.Join(t.TempDir(), "cluster.ckpt")
	campaignArgs := []string{"-sort-elements", "48", "sort1"}

	aw := newAddrWatcher()
	child := exec.Command(exe, append([]string{
		"-serve", "127.0.0.1:0", "-checkpoint", ck, "-progress", "-unit-size", "4",
	}, campaignArgs...)...)
	child.Env = append(os.Environ(), "FAVSCAN_CHILD=1")
	child.Stdout = io.Discard
	child.Stderr = aw
	if err := child.Start(); err != nil {
		t.Fatal(err)
	}
	addr := aw.awaitAddr(t)

	// A deliberately slow worker (single executor, rerun strategy) keeps
	// the campaign running long enough for the SIGINT to land mid-scan. It
	// outlives the coordinator, so any clean shutdown path is acceptable.
	workerDone := make(chan struct{})
	go func() {
		defer close(workerDone)
		_ = faultspace.JoinScan(addr, faultspace.JoinOptions{
			WorkerID: "phase1", Workers: 1, Rerun: true,
		})
	}()

	deadline := time.Now().Add(30 * time.Second)
	for {
		if fi, err := os.Stat(ck); err == nil && fi.Size() > 200 {
			break
		}
		if time.Now().After(deadline) {
			child.Process.Kill()
			t.Fatalf("checkpoint never grew past its header; child stderr:\n%s", aw.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := child.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	if err := child.Wait(); err == nil {
		t.Fatalf("child completed before the interrupt landed; stderr:\n%s", aw.String())
	}
	select {
	case <-workerDone:
	case <-time.After(60 * time.Second):
		t.Fatal("phase-1 worker never exited after the coordinator died")
	}

	h, prior, err := checkpoint.Load(ck)
	if err != nil {
		t.Fatalf("checkpoint after SIGINT must be valid: %v", err)
	}
	if len(prior) == 0 || uint64(len(prior)) >= h.Classes {
		t.Fatalf("checkpoint holds %d/%d classes, want a proper partial campaign", len(prior), h.Classes)
	}
	t.Logf("coordinator interrupted after %d/%d classes", len(prior), h.Classes)

	resumed := serveWithWorkers(t,
		append([]string{"-checkpoint", ck, "-resume", "-unit-size", "4"}, campaignArgs...), 2)
	reference := runScan(t, campaignArgs...)
	if resumed != reference {
		t.Errorf("resumed distributed report differs from uninterrupted local run:\n--- resumed ---\n%s--- reference ---\n%s",
			resumed, reference)
	}
}

func TestScanErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-sample", "10", "-biased", "-effective", "hi"}, &sb, io.Discard); err == nil {
		t.Error("biased+effective must fail")
	}
	if err := run([]string{"nonsense"}, &sb, io.Discard); err == nil {
		t.Error("unknown benchmark must fail")
	}
	if err := run([]string{}, &sb, io.Discard); err == nil {
		t.Error("missing argument must fail")
	}
}

// TestTelemetryManifestLadder is the observability acceptance test: a
// ladder scan with -telemetry must emit a valid JSON run manifest
// carrying the campaign identity hash and non-zero strategy counters —
// while leaving the stdout report byte-identical to an uninstrumented
// run (invariant 10 at the CLI level).
func TestTelemetryManifestLadder(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.json")
	reference := runScan(t, "-strategy", "ladder", "hi")
	instrumented := runScan(t, "-strategy", "ladder", "-telemetry", path, "hi")
	if instrumented != reference {
		t.Errorf("-telemetry changed the stdout report:\n--- with ---\n%s--- without ---\n%s",
			instrumented, reference)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("manifest not written: %v", err)
	}
	var m faultspace.RunManifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("manifest is not valid JSON: %v\n%s", err, data)
	}
	if m.Tool != "favscan" || m.Benchmark != "hi/baseline" {
		t.Errorf("manifest identification wrong: tool=%q benchmark=%q", m.Tool, m.Benchmark)
	}
	if m.Strategy != "ladder" || m.Space != "memory" {
		t.Errorf("manifest config wrong: strategy=%q space=%q", m.Strategy, m.Space)
	}
	if len(m.Identity) != 64 {
		t.Errorf("identity %q is not a hex SHA-256", m.Identity)
	}
	if _, err := hex.DecodeString(m.Identity); err != nil {
		t.Errorf("identity %q is not hex: %v", m.Identity, err)
	}
	if m.Classes != 16 || m.Workers <= 0 || m.Interrupted {
		t.Errorf("manifest campaign shape wrong: %+v", m)
	}
	if m.WallSeconds <= 0 {
		t.Error("manifest must record wall time")
	}
	if got := m.Telemetry.Counters["scan.experiments"]; got != 16 {
		t.Errorf("scan.experiments = %d, want 16", got)
	}
	if m.Telemetry.Counters["ladder.rung_restores"] == 0 {
		t.Error("ladder.rung_restores must be non-zero on a ladder scan")
	}
	if m.Telemetry.Gauges["ladder.rungs"] <= 0 {
		t.Error("ladder.rungs gauge must be positive on a ladder scan")
	}
	var timed uint64
	for name, h := range m.Telemetry.Histograms {
		if strings.HasPrefix(name, "scan.outcome.") {
			timed += h.Count
		}
	}
	if timed != 16 {
		t.Errorf("outcome histograms hold %d observations, want 16", timed)
	}

	// The identity hash is strategy-invariant: a snapshot run of the same
	// campaign must record the same identity.
	path2 := filepath.Join(t.TempDir(), "run2.json")
	runScan(t, "-telemetry", path2, "hi")
	var m2 faultspace.RunManifest
	data2, err := os.ReadFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data2, &m2); err != nil {
		t.Fatal(err)
	}
	if m2.Identity != m.Identity {
		t.Errorf("identity differs across strategies: %s vs %s", m.Identity, m2.Identity)
	}
	if m2.Strategy != "snapshot" {
		t.Errorf("default strategy name = %q, want snapshot", m2.Strategy)
	}
	if m2.Telemetry.Counters["ladder.rung_restores"] != 0 || m2.Telemetry.Gauges["ladder.rungs"] != 0 {
		t.Error("snapshot manifest must not carry ladder counters")
	}
}

// TestTelemetrySummaryTable: -progress must append the human telemetry
// summary to stderr, never stdout.
func TestTelemetrySummaryTable(t *testing.T) {
	var out, prog strings.Builder
	if err := run([]string{"-progress", "hi"}, &out, &prog); err != nil {
		t.Fatal(err)
	}
	p := prog.String()
	if !strings.Contains(p, "Telemetry") || !strings.Contains(p, "scan.experiments") {
		t.Errorf("stderr missing telemetry summary:\n%s", p)
	}
	if !strings.Contains(p, "scan.outcome.sdc") {
		t.Errorf("summary missing outcome histogram row:\n%s", p)
	}
	if strings.Contains(out.String(), "scan.experiments") {
		t.Error("telemetry summary leaked into the stdout report")
	}
}

// TestTelemetryManifestCluster: a coordinator run with -telemetry folds
// the cluster and checkpoint instruments into the same manifest.
func TestTelemetryManifestCluster(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cluster.json")
	ck := filepath.Join(dir, "c.ckpt")
	serveWithWorkers(t, []string{
		"-telemetry", path, "-checkpoint", ck, "-unit-size", "8", "-sort-elements", "8", "sort1",
	}, 1)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("manifest not written: %v", err)
	}
	var m faultspace.RunManifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if m.Classes == 0 || m.Interrupted {
		t.Errorf("cluster manifest shape wrong: %+v", m)
	}
	if m.Telemetry.Counters["cluster.leases_granted"] == 0 {
		t.Error("cluster.leases_granted must be non-zero")
	}
	if got := int(m.Telemetry.Counters["cluster.submissions"]); got == 0 {
		t.Errorf("cluster.submissions = %d, want non-zero", got)
	}
	if m.Telemetry.Counters["checkpoint.flushes"] == 0 || m.Telemetry.Counters["checkpoint.bytes"] == 0 {
		t.Error("checkpoint writer instruments must be non-zero with -checkpoint")
	}
	var joined bool
	for _, e := range m.Events {
		if e.Name == "worker.joined" {
			joined = true
		}
	}
	if !joined {
		t.Errorf("manifest events missing worker.joined: %+v", m.Events)
	}
}
