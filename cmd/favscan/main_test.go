package main

import (
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"faultspace/internal/checkpoint"
)

// TestMain doubles the test binary as the favscan executable: with
// FAVSCAN_CHILD=1 it runs a real favscan invocation instead of the test
// suite, so the kill/resume test can SIGINT an actual child process.
func TestMain(m *testing.M) {
	if os.Getenv("FAVSCAN_CHILD") == "1" {
		if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "favscan:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func runScan(t *testing.T, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(args, &sb, io.Discard); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return sb.String()
}

func TestFullScanHi(t *testing.T) {
	out := runScan(t, "hi")
	for _, want := range []string{
		"fault-space size w", "128",
		"failures, weighted (the paper's F)", "48",
		"coverage, weighted", "0.6250",
		"SDC",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestOutcomeDump(t *testing.T) {
	out := runScan(t, "-outcomes", "hi")
	if !strings.Contains(out, "Per-class outcomes") {
		t.Fatalf("missing outcome dump:\n%s", out)
	}
	// 16 classes plus headers.
	if got := strings.Count(out, "SDC"); got < 16 {
		t.Errorf("expected >= 16 SDC rows, got %d", got)
	}
}

func TestSamplingModes(t *testing.T) {
	raw := runScan(t, "-sample", "300", "-seed", "2", "hi")
	if !strings.Contains(raw, "mode raw") || !strings.Contains(raw, "extrapolated failures") {
		t.Errorf("raw sampling output wrong:\n%s", raw)
	}
	biased := runScan(t, "-sample", "300", "-biased", "hi")
	if !strings.Contains(biased, "classes(biased)") {
		t.Errorf("biased sampling output wrong:\n%s", biased)
	}
	eff := runScan(t, "-sample", "300", "-effective", "hi")
	if !strings.Contains(eff, "mode effective") {
		t.Errorf("effective sampling output wrong:\n%s", eff)
	}
}

func TestRerunStrategyFlag(t *testing.T) {
	a := runScan(t, "hi")
	b := runScan(t, "-rerun", "hi")
	if a != b {
		t.Error("rerun strategy must not change scan results")
	}
}

func TestCSV(t *testing.T) {
	out := runScan(t, "-csv", "hi")
	if !strings.Contains(out, "metric,value") {
		t.Errorf("CSV output wrong:\n%s", out)
	}
}

func TestSaveAndLoadArchive(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "hi.scan.json")
	saved := runScan(t, "-save", path, "hi")
	if !strings.Contains(saved, "archive written") {
		t.Fatalf("save output wrong:\n%s", saved)
	}
	loaded := runScan(t, "-load", path)
	for _, want := range []string{"hi/baseline", "128", "48", "0.6250"} {
		if !strings.Contains(loaded, want) {
			t.Errorf("loaded analysis missing %q:\n%s", want, loaded)
		}
	}
	var sb strings.Builder
	if err := run([]string{"-load", path, "hi"}, &sb, io.Discard); err == nil {
		t.Error("-load with a benchmark argument must fail")
	}
	if err := run([]string{"-load", filepath.Join(dir, "missing.json")}, &sb, io.Discard); err == nil {
		t.Error("-load of a missing file must fail")
	}
}

func TestCheckpointFlagValidation(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-resume", "hi"}, &sb, io.Discard); err == nil {
		t.Error("-resume without -checkpoint must fail")
	}
	ck := filepath.Join(t.TempDir(), "c.ckpt")
	if err := run([]string{"-checkpoint", ck, "-sample", "10", "hi"}, &sb, io.Discard); err == nil {
		t.Error("-checkpoint with -sample must fail")
	}
	if err := run([]string{"-checkpoint", ck, "-load", "x.json"}, &sb, io.Discard); err == nil {
		t.Error("-checkpoint with -load must fail")
	}
}

func TestProgressOutput(t *testing.T) {
	var out, prog strings.Builder
	if err := run([]string{"-progress", "hi"}, &out, &prog); err != nil {
		t.Fatal(err)
	}
	p := prog.String()
	if !strings.Contains(p, "progress: 0/16 classes") {
		t.Errorf("missing initial progress line:\n%s", p)
	}
	if !strings.Contains(p, "scan finished: 16/16 classes (100.0%)") {
		t.Errorf("missing final summary line:\n%s", p)
	}
	if strings.Contains(out.String(), "progress") {
		t.Error("progress chatter leaked into the stdout report")
	}
}

// TestCheckpointCreateThenResume exercises the checkpoint path without a
// kill: a completed campaign's checkpoint resumes as a no-op with a
// byte-identical report, a fresh -checkpoint refuses to overwrite it, and
// -resume with a different program is rejected by the identity hash.
func TestCheckpointCreateThenResume(t *testing.T) {
	ck := filepath.Join(t.TempDir(), "hi.ckpt")
	first := runScan(t, "-checkpoint", ck, "hi")
	resumed := runScan(t, "-checkpoint", ck, "-resume", "hi")
	if first != resumed {
		t.Errorf("no-op resume changed the report:\n--- first ---\n%s--- resumed ---\n%s", first, resumed)
	}
	var sb strings.Builder
	if err := run([]string{"-checkpoint", ck, "hi"}, &sb, io.Discard); err == nil {
		t.Error("-checkpoint must refuse an existing file without -resume")
	}
	if err := run([]string{"-checkpoint", ck, "-resume", "sort1"}, &sb, io.Discard); err == nil {
		t.Error("-resume with a different campaign must fail the identity check")
	}
}

// TestKillAndResumeByteIdentical is the acceptance test for crash-safe
// campaigns: a real favscan child process is interrupted with SIGINT
// mid-scan, then the campaign is resumed from its checkpoint, and the
// resumed report must be byte-identical to an uninterrupted run's. The
// child scans with the slow rerun strategy so the interrupt reliably
// lands mid-run; the resume switches back to the snapshot strategy,
// which the campaign identity deliberately permits.
func TestKillAndResumeByteIdentical(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("relies on SIGINT delivery")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	ck := filepath.Join(t.TempDir(), "sort1.ckpt")
	campaign := []string{"-workers", "1", "-sort-elements", "48", "sort1"}

	child := exec.Command(exe, append([]string{"-checkpoint", ck, "-progress", "-rerun"}, campaign...)...)
	child.Env = append(os.Environ(), "FAVSCAN_CHILD=1")
	var childErr strings.Builder
	child.Stdout = io.Discard
	child.Stderr = &childErr
	if err := child.Start(); err != nil {
		t.Fatal(err)
	}
	// Wait until at least one record frame has been flushed (the header
	// alone is 61 bytes; a flushed frame adds hundreds), then interrupt.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if fi, err := os.Stat(ck); err == nil && fi.Size() > 200 {
			break
		}
		if time.Now().After(deadline) {
			child.Process.Kill()
			t.Fatalf("checkpoint never grew past its header; child stderr:\n%s", childErr.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := child.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	if err := child.Wait(); err == nil {
		t.Fatalf("child completed before the interrupt landed; stderr:\n%s", childErr.String())
	}
	if !strings.Contains(childErr.String(), "interrupt") {
		t.Errorf("child stderr does not mention the interrupt:\n%s", childErr.String())
	}

	h, prior, err := checkpoint.Load(ck)
	if err != nil {
		t.Fatalf("checkpoint after SIGINT must be valid: %v", err)
	}
	if len(prior) == 0 || uint64(len(prior)) >= h.Classes {
		t.Fatalf("checkpoint holds %d/%d classes, want a proper partial campaign", len(prior), h.Classes)
	}
	t.Logf("child interrupted after %d/%d classes", len(prior), h.Classes)

	resumed := runScan(t, append([]string{"-checkpoint", ck, "-resume"}, campaign...)...)
	reference := runScan(t, campaign...)
	if resumed != reference {
		t.Errorf("resumed report differs from uninterrupted run:\n--- resumed ---\n%s--- reference ---\n%s",
			resumed, reference)
	}
}

func TestScanErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-sample", "10", "-biased", "-effective", "hi"}, &sb, io.Discard); err == nil {
		t.Error("biased+effective must fail")
	}
	if err := run([]string{"nonsense"}, &sb, io.Discard); err == nil {
		t.Error("unknown benchmark must fail")
	}
	if err := run([]string{}, &sb, io.Discard); err == nil {
		t.Error("missing argument must fail")
	}
}
