package main

import (
	"path/filepath"
	"strings"
	"testing"
)

func runScan(t *testing.T, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(args, &sb); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return sb.String()
}

func TestFullScanHi(t *testing.T) {
	out := runScan(t, "hi")
	for _, want := range []string{
		"fault-space size w", "128",
		"failures, weighted (the paper's F)", "48",
		"coverage, weighted", "0.6250",
		"SDC",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestOutcomeDump(t *testing.T) {
	out := runScan(t, "-outcomes", "hi")
	if !strings.Contains(out, "Per-class outcomes") {
		t.Fatalf("missing outcome dump:\n%s", out)
	}
	// 16 classes plus headers.
	if got := strings.Count(out, "SDC"); got < 16 {
		t.Errorf("expected >= 16 SDC rows, got %d", got)
	}
}

func TestSamplingModes(t *testing.T) {
	raw := runScan(t, "-sample", "300", "-seed", "2", "hi")
	if !strings.Contains(raw, "mode raw") || !strings.Contains(raw, "extrapolated failures") {
		t.Errorf("raw sampling output wrong:\n%s", raw)
	}
	biased := runScan(t, "-sample", "300", "-biased", "hi")
	if !strings.Contains(biased, "classes(biased)") {
		t.Errorf("biased sampling output wrong:\n%s", biased)
	}
	eff := runScan(t, "-sample", "300", "-effective", "hi")
	if !strings.Contains(eff, "mode effective") {
		t.Errorf("effective sampling output wrong:\n%s", eff)
	}
}

func TestRerunStrategyFlag(t *testing.T) {
	a := runScan(t, "hi")
	b := runScan(t, "-rerun", "hi")
	if a != b {
		t.Error("rerun strategy must not change scan results")
	}
}

func TestCSV(t *testing.T) {
	out := runScan(t, "-csv", "hi")
	if !strings.Contains(out, "metric,value") {
		t.Errorf("CSV output wrong:\n%s", out)
	}
}

func TestSaveAndLoadArchive(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "hi.scan.json")
	saved := runScan(t, "-save", path, "hi")
	if !strings.Contains(saved, "archive written") {
		t.Fatalf("save output wrong:\n%s", saved)
	}
	loaded := runScan(t, "-load", path)
	for _, want := range []string{"hi/baseline", "128", "48", "0.6250"} {
		if !strings.Contains(loaded, want) {
			t.Errorf("loaded analysis missing %q:\n%s", want, loaded)
		}
	}
	var sb strings.Builder
	if err := run([]string{"-load", path, "hi"}, &sb); err == nil {
		t.Error("-load with a benchmark argument must fail")
	}
	if err := run([]string{"-load", filepath.Join(dir, "missing.json")}, &sb); err == nil {
		t.Error("-load of a missing file must fail")
	}
}

func TestScanErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-sample", "10", "-biased", "-effective", "hi"}, &sb); err == nil {
		t.Error("biased+effective must fail")
	}
	if err := run([]string{"nonsense"}, &sb); err == nil {
		t.Error("unknown benchmark must fail")
	}
	if err := run([]string{}, &sb); err == nil {
		t.Error("missing argument must fail")
	}
}
