package main

import (
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"faultspace"
	"faultspace/internal/progs"
)

// TestMain doubles the test binary as the favserve executable: with
// FAVSERVE_CHILD=1 it runs a real favserve invocation instead of the
// test suite, so the drain test can SIGINT an actual child process.
func TestMain(m *testing.M) {
	if os.Getenv("FAVSERVE_CHILD") == "1" {
		if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "favserve:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func TestRejectsPositionalArgs(t *testing.T) {
	if err := run([]string{"hi"}, io.Discard, io.Discard); err == nil {
		t.Fatal("positional arguments must be rejected")
	}
}

// syncBuffer collects child stderr safely across goroutines.
type syncBuffer struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}

var listenRE = regexp.MustCompile(`favserve: serving campaigns on (\S+)`)

// startChild launches the test binary as a real favserve process and
// waits for it to announce its bound address on stderr.
func startChild(t *testing.T, dir string) (*exec.Cmd, *syncBuffer, string) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	child := exec.Command(exe, "-addr", "127.0.0.1:0", "-workers", "1", "-archive", dir)
	child.Env = append(os.Environ(), "FAVSERVE_CHILD=1")
	stderr := &syncBuffer{}
	child.Stdout = io.Discard
	child.Stderr = stderr
	if err := child.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { child.Process.Kill() })
	deadline := time.Now().Add(30 * time.Second)
	for {
		if m := listenRE.FindStringSubmatch(stderr.String()); m != nil {
			return child, stderr, m[1]
		}
		if time.Now().After(deadline) {
			t.Fatalf("child never announced its address; stderr:\n%s", stderr.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// drainChild SIGINTs a favserve child and asserts the graceful-drain
// contract: exit status zero plus the drain messages on stderr.
func drainChild(t *testing.T, child *exec.Cmd, stderr *syncBuffer) {
	t.Helper()
	if err := child.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- child.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("child exited non-zero after SIGINT: %v; stderr:\n%s", err, stderr.String())
		}
	case <-time.After(30 * time.Second):
		child.Process.Kill()
		t.Fatalf("child did not drain within 30s; stderr:\n%s", stderr.String())
	}
	out := stderr.String()
	if !strings.Contains(out, "favserve: interrupt — draining") {
		t.Errorf("child stderr does not mention draining:\n%s", out)
	}
	if !strings.Contains(out, "favserve: drained") {
		t.Errorf("child stderr does not confirm the drain:\n%s", out)
	}
}

// TestServeSubmitSIGINTDrain is the service acceptance test, mirroring
// the favscan checkpoint SIGINT test: a real favserve child process with
// one in-process worker serves a submitted campaign and exits zero on
// SIGINT after draining; a second child over the same archive directory
// answers the re-submitted campaign from the archive without executing
// anything.
func TestServeSubmitSIGINTDrain(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("relies on SIGINT delivery")
	}
	dir := t.TempDir()
	child, stderr, addr := startChild(t, dir)

	spec, err := progs.Resolve("hi", progs.Sizes{})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := spec.Baseline()
	if err != nil {
		t.Fatal(err)
	}

	// First submission executes on the child's worker.
	info, err := faultspace.SubmitCampaign(addr, prog, faultspace.ScanOptions{}, "alice")
	if err != nil {
		t.Fatalf("submit: %v; child stderr:\n%s", err, stderr.String())
	}
	if !info.Terminal() {
		info, err = faultspace.WaitCampaign(addr, info.ID, 20*time.Millisecond, nil)
		if err != nil {
			t.Fatal(err)
		}
	}
	if info.State != "done" || info.Cached {
		t.Fatalf("first run: state %s cached %v, want a live done", info.State, info.Cached)
	}
	live, err := faultspace.CampaignReport(addr, info.ID)
	if err != nil {
		t.Fatal(err)
	}

	// A duplicate to the same live service is answered idempotently from
	// the in-memory entry, already done.
	again, err := faultspace.SubmitCampaign(addr, prog, faultspace.ScanOptions{}, "bob")
	if err != nil {
		t.Fatal(err)
	}
	if again.State != "done" || again.ID != info.ID {
		t.Fatalf("duplicate: state %s id %.12s, want the completed campaign", again.State, again.ID)
	}

	// The archive must hold the entry on disk.
	entries, err := filepath.Glob(filepath.Join(dir, "*.far"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("archive dir holds %d entries (%v), want 1", len(entries), err)
	}

	// SIGINT: the child drains and exits zero.
	drainChild(t, child, stderr)

	// A fresh service over the same archive answers the re-submitted
	// campaign from disk: done immediately, marked cached, and its
	// report reconstructs to the same outcomes without executing a
	// single experiment (invariant 12, end to end through the CLI).
	child2, stderr2, addr2 := startChild(t, dir)
	cachedInfo, err := faultspace.SubmitCampaign(addr2, prog, faultspace.ScanOptions{}, "bob")
	if err != nil {
		t.Fatal(err)
	}
	if cachedInfo.State != "done" || !cachedInfo.Cached {
		t.Fatalf("resubmit after restart: state %s cached %v, want done from archive",
			cachedInfo.State, cachedInfo.Cached)
	}
	cached, err := faultspace.CampaignReport(addr2, cachedInfo.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(cached.Outcomes) != len(live.Outcomes) {
		t.Fatalf("cached report has %d outcomes, live %d", len(cached.Outcomes), len(live.Outcomes))
	}
	for i := range live.Outcomes {
		if cached.Outcomes[i] != live.Outcomes[i] {
			t.Fatalf("cached outcome %d differs from live", i)
		}
	}
	drainChild(t, child2, stderr2)
}
