// Command favserve runs a campaign service: a long-lived, multi-tenant
// coordinator that accepts campaign submissions over HTTP, runs them
// against a shared worker fleet with per-tenant fair scheduling, and
// archives every report content-addressed by the campaign identity
// hash. A duplicate submission — same program image, fault-space kind
// and timeout budget — is answered from the archive byte-identically
// without executing a single experiment.
//
// Usage:
//
//	favserve [flags]
//
// Examples:
//
//	favserve -archive /var/lib/favserve -workers 2   # self-contained service
//	favserve -addr :9321                             # serve only; workers join with
//	                                                 #   favscan -fleet host:9321
//	favscan -submit host:9321 -tenant alice sync2    # submit + wait + report
//
// SIGINT drains the service gracefully: queued campaigns are cancelled,
// running ones stop granting leases, in-flight leases drain, and the
// archive is flushed before exit.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"

	"faultspace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "favserve:", err)
		os.Exit(1)
	}
}

// run executes one favserve invocation; service chatter goes to errW.
func run(args []string, w, errW io.Writer) error {
	fs := flag.NewFlagSet("favserve", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":9321", "listen address for the campaign service")
		archiveDir = fs.String("archive", "", "directory of the content-addressed result archive (empty = in-memory only)")
		archiveMax = fs.Int64("archive-max", 0, "archive size cap in bytes; LRU entries are evicted beyond it (0 = unbounded)")
		maxActive  = fs.Int("max-active", 0, "campaigns running concurrently (default 2)")
		maxQueued  = fs.Int("max-queued", 0, "queued campaigns across all tenants before 429 backpressure (default 16)")
		unitSize   = fs.Int("unit-size", 0, "classes per leased work unit (default 256)")
		leaseTTL   = fs.Duration("lease", 0, "work-unit lease TTL before reassignment (default 10s)")
		starveTTL  = fs.Duration("starve-after", 0, "starved-tenant watchdog: flag tenants whose campaigns queue longer than this (default 2m)")
		workers    = fs.Int("workers", 0, "in-process fleet workers executing campaigns (0 = serve only; workers join with favscan -fleet)")
		parallel   = fs.Int("parallel", 0, "experiment executors per in-process worker (0 = GOMAXPROCS)")
		rerun      = fs.Bool("rerun", false, "in-process workers use the rerun-from-start strategy")
		predec     = fs.Bool("predecode", true, "in-process workers execute via the pre-decoded dispatch stream")
		memo       = fs.Bool("memo", false, "in-process workers memoize experiment remainders per campaign")
		verbose    = fs.Bool("verbose", false, "log campaign and worker life-cycle events to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("favserve takes no positional arguments: campaigns arrive via favscan -submit")
	}

	reg := faultspace.NewTelemetry()
	reg.EnableTrace(1024)

	// Graceful SIGINT: drain leases, flush the archive, then exit zero.
	intCh := make(chan struct{})
	doneCh := make(chan struct{})
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt)
	defer signal.Stop(sigCh)
	defer close(doneCh)
	go func() {
		select {
		case <-sigCh:
			fmt.Fprintln(errW, "favserve: interrupt — draining")
			close(intCh)
		case <-doneCh:
		}
	}()

	opts := faultspace.CampaignServiceOptions{
		ArchiveDir:      *archiveDir,
		MaxArchiveBytes: *archiveMax,
		MaxActive:       *maxActive,
		MaxQueued:       *maxQueued,
		UnitSize:        *unitSize,
		LeaseTTL:        *leaseTTL,
		StarveAfter:     *starveTTL,
		LocalWorkers:    *workers,
		WorkerOptions: faultspace.JoinOptions{
			Workers:   *parallel,
			Rerun:     *rerun,
			Predecode: *predec,
			Memo:      *memo,
		},
		Interrupt: intCh,
		Telemetry: reg,
		OnListen: func(bound string) {
			fmt.Fprintf(errW, "favserve: serving campaigns on %s\n", bound)
		},
	}
	if *verbose {
		opts.Logf = func(format string, args ...any) {
			fmt.Fprintf(errW, format+"\n", args...)
		}
	}
	if err := faultspace.ServeCampaigns(*addr, opts); err != nil {
		return err
	}
	fmt.Fprintln(errW, "favserve: drained")
	return nil
}
