// Benchmark harness: one testing.B benchmark per table and figure of the
// paper (see DESIGN.md's experiment index), plus ablation benchmarks for
// the design choices called out there. Each benchmark regenerates its
// artifact from scratch per iteration and reports the key result values as
// custom metrics, so `go test -bench=. -benchmem` doubles as a full
// reproduction run.
package faultspace_test

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"testing"

	"faultspace"
	"faultspace/internal/asm"
	"faultspace/internal/campaign"
	"faultspace/internal/experiments"
	"faultspace/internal/machine"
	"faultspace/internal/metrics"
	"faultspace/internal/progs"
	"faultspace/internal/pruning"
	"faultspace/internal/trace"
)

// benchSizes keeps the per-iteration cost of the campaign benchmarks
// moderate; favreport uses the full default sizes.
var benchSizes = experiments.Figure2Config{
	BinSemRounds: 2,
	SyncRounds:   2,
	SyncBufBytes: 32,
}

// BenchmarkTable1Poisson regenerates Table I: Poisson probabilities for
// k = 0..5 independent faults per benchmark run.
func BenchmarkTable1Poisson(b *testing.B) {
	var lambda float64
	for i := 0; i < b.N; i++ {
		t1, err := experiments.Table1(5)
		if err != nil {
			b.Fatal(err)
		}
		lambda = t1.Lambda
	}
	b.ReportMetric(lambda*1e13, "lambda-e13")
}

// BenchmarkFigure1Pruning regenerates the Figure 1 def/use pruning example
// (108 raw coordinates collapse to 8 experiments).
func BenchmarkFigure1Pruning(b *testing.B) {
	var experimentsLeft int
	for i := 0; i < b.N; i++ {
		f1, err := experiments.Figure1()
		if err != nil {
			b.Fatal(err)
		}
		experimentsLeft = f1.Experiments
	}
	b.ReportMetric(float64(experimentsLeft), "experiments")
}

// BenchmarkFigure3Dilution regenerates the §IV Gedankenexperiment: both
// dilution cheats, full scans, and the invariant check (coverage inflated,
// failures unchanged).
func BenchmarkFigure3Dilution(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		d, err := experiments.Dilution(4, faultspace.ScanOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if err := d.Verify(); err != nil {
			b.Fatal(err)
		}
		gain = d.CmpDFT.CoverageGainWeighted
	}
	b.ReportMetric(gain, "coverage-gain-pp")
}

// BenchmarkFigure2Coverage regenerates Figure 2 panels a/b/d/e: four full
// fault-space scans (bin_sem2/sync2 × baseline/SUM+DMR) with both
// accounting rules.
func BenchmarkFigure2Coverage(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		f2, err := experiments.Figure2(benchSizes, faultspace.ScanOptions{})
		if err != nil {
			b.Fatal(err)
		}
		ratio = f2.Sync2.Cmp.RatioWeighted
	}
	b.ReportMetric(ratio, "sync2-failure-ratio")
}

// BenchmarkFigure2Runtime regenerates Figure 2g: golden-run runtime and
// memory of all four benchmark variants (no fault injection).
func BenchmarkFigure2Runtime(b *testing.B) {
	specs := []progs.Spec{
		progs.BinSem2(benchSizes.BinSemRounds),
		progs.Sync2(benchSizes.SyncRounds, benchSizes.SyncBufBytes),
	}
	var cycles uint64
	for i := 0; i < b.N; i++ {
		for _, spec := range specs {
			for _, build := range []func() (*asm.Program, error){spec.Baseline, spec.Hardened} {
				p, err := build()
				if err != nil {
					b.Fatal(err)
				}
				g, err := trace.Record(p.Name, machine.Config{RAMSize: p.RAMSize},
					p.Code, p.Image, 1<<22)
				if err != nil {
					b.Fatal(err)
				}
				cycles += g.Cycles
			}
		}
	}
	b.ReportMetric(float64(cycles)/float64(b.N), "cycles-per-suite")
}

// BenchmarkSectionIIICPruneStats regenerates the §III-C experiment-
// reduction statistics: raw fault-space size vs conducted experiments.
func BenchmarkSectionIIICPruneStats(b *testing.B) {
	p, err := progs.Sync2(benchSizes.SyncRounds, benchSizes.SyncBufBytes).Baseline()
	if err != nil {
		b.Fatal(err)
	}
	var reduction float64
	for i := 0; i < b.N; i++ {
		st, err := experiments.PruneStatsFor(p)
		if err != nil {
			b.Fatal(err)
		}
		reduction = st.ReductionFactor
	}
	b.ReportMetric(reduction, "reduction-x")
}

// BenchmarkPitfall2Sampling contrasts the correct raw-space sampler with
// the biased class-uniform sampler of Pitfall 2 on the same budget.
func BenchmarkPitfall2Sampling(b *testing.B) {
	p, err := progs.Sync2(benchSizes.SyncRounds, benchSizes.SyncBufBytes).Baseline()
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name   string
		biased bool
	}{{"raw", false}, {"biased", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := faultspace.Sample(p, faultspace.SampleOptions{
					N:      500,
					Seed:   int64(i + 1),
					Biased: mode.biased,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPitfall3Extrapolation regenerates the §V-C Corollary-2 table:
// extrapolated failure counts with confidence intervals from a sampling
// campaign, checked against the full-scan ground truth.
func BenchmarkPitfall3Extrapolation(b *testing.B) {
	p, err := progs.Sync2(benchSizes.SyncRounds, benchSizes.SyncBufBytes).Baseline()
	if err != nil {
		b.Fatal(err)
	}
	var estimate float64
	for i := 0; i < b.N; i++ {
		s, err := experiments.Sampling(p, 1000, int64(i+1), faultspace.ScanOptions{})
		if err != nil {
			b.Fatal(err)
		}
		estimate = s.Raw.FailEstimate
	}
	b.ReportMetric(estimate, "extrapolated-F")
}

// BenchmarkExtensionRegisterSpace regenerates the §VI-B extension: the
// bin_sem2 pair under the register fault model.
func BenchmarkExtensionRegisterSpace(b *testing.B) {
	spec := progs.BinSem2(benchSizes.BinSemRounds)
	var ratio float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.RegisterSpace(spec, faultspace.ScanOptions{})
		if err != nil {
			b.Fatal(err)
		}
		ratio = r.Registers.RatioWeighted
	}
	b.ReportMetric(ratio, "register-failure-ratio")
}

// BenchmarkExtensionMultiFault regenerates the §III-A extension: the
// 96 single-fault + 4560 double-fault enumeration on one protected word.
func BenchmarkExtensionMultiFault(b *testing.B) {
	var fraction float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.MultiFault(faultspace.ScanOptions{})
		if err != nil {
			b.Fatal(err)
		}
		fraction = r.FailureFraction()
	}
	b.ReportMetric(100*fraction, "pair-failure-pct")
}

// BenchmarkExtensionMechanisms compares the two implemented hardening
// mechanisms (SUM+DMR vs TMR) on one benchmark pair under the paper's
// metric.
func BenchmarkExtensionMechanisms(b *testing.B) {
	specs := []progs.Spec{progs.BinSem2(benchSizes.BinSemRounds)}
	var tmrRatio float64
	for i := 0; i < b.N; i++ {
		m, err := experiments.Mechanisms(specs, faultspace.ScanOptions{})
		if err != nil {
			b.Fatal(err)
		}
		tmrRatio = m.Rows[0].TMR.RatioWeighted
	}
	b.ReportMetric(tmrRatio, "tmr-failure-ratio")
}

// scanBenchResult is one (benchmark, strategy) timing from
// BenchmarkFullScan, emitted to BENCH_scan.json by TestMain so the scan
// hot path's perf trajectory is tracked from PR to PR.
type scanBenchResult struct {
	Benchmark string `json:"benchmark"`
	Strategy  string `json:"strategy"`
	// Space names the fault-space kind for non-memory variants (the
	// attack-style models have very different class counts and
	// per-experiment costs, so they are tracked as their own rows).
	Space   string  `json:"space,omitempty"`
	Classes int     `json:"classes"`
	NsPerOp float64 `json:"ns_per_op"`
	// Counters holds the run's telemetry counters normalized per scan
	// (experiments, strategy shortcuts, pool reuse), so the perf log also
	// tracks *how* each strategy reached its timing.
	Counters map[string]float64 `json:"counters_per_op,omitempty"`
}

var scanBench struct {
	sync.Mutex
	results []scanBenchResult
}

// TestMain emits BENCH_scan.json after a benchmark run that exercised
// BenchmarkFullScan; plain `go test` runs write nothing, and setting
// BENCH_SKIP_WRITE suppresses the write for smoke runs (`make
// bench-smoke` runs one un-calibrated iteration per strategy — numbers
// that must not clobber the tracked timings).
func TestMain(m *testing.M) {
	code := m.Run()
	scanBench.Lock()
	results := scanBench.results
	scanBench.Unlock()
	if code == 0 && len(results) > 0 && os.Getenv("BENCH_SKIP_WRITE") == "" {
		if data, err := json.MarshalIndent(results, "", "  "); err == nil {
			if err := os.WriteFile("BENCH_scan.json", append(data, '\n'), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "bench: BENCH_scan.json:", err)
			}
		}
	}
	os.Exit(code)
}

// --- Ablation benchmarks (DESIGN.md §8) ---

// scanBenchSizes are larger than benchSizes on purpose: the executor
// benchmark needs golden traces long enough that per-experiment
// simulation (not channel/classify overhead) dominates, as it does at
// realistic campaign sizes.
var scanBenchSizes = experiments.Figure2Config{
	BinSemRounds: 8,
	SyncRounds:   8,
	SyncBufBytes: 64,
}

// BenchmarkFullScan times the complete full-scan pipeline per execution
// strategy on the two Figure-2 kernels. This is the headline executor
// benchmark: the ladder strategy must beat rerun by ≥ 2× here (see
// DESIGN.md §8), and its timings feed BENCH_scan.json.
func BenchmarkFullScan(b *testing.B) {
	benches := []struct {
		name string
		spec progs.Spec
	}{
		{"bin_sem2", progs.BinSem2(scanBenchSizes.BinSemRounds)},
		{"sync2", progs.Sync2(scanBenchSizes.SyncRounds, scanBenchSizes.SyncBufBytes)},
	}
	strategies := []struct {
		name      string
		strat     faultspace.Strategy
		predecode bool
		memo      bool
		trace     bool
	}{
		// The plain trio tracks the historical baselines; the +pre and
		// +pre+memo variants quantify the accelerator layers on top. Their
		// memo.hits / memo.misses / predecode.invalidations counters land
		// in BENCH_scan.json alongside the timings they explain. The +trace
		// rows rerun the fully-accelerated configurations with span tracing
		// enabled, so the perf log tracks the cost of an observed scan next
		// to the blind one it must stay within noise of (invariant 15 pins
		// the outputs identical; these rows pin the timing honest).
		{"snapshot", faultspace.StrategySnapshot, false, false, false},
		{"rerun", faultspace.StrategyRerun, false, false, false},
		{"ladder", faultspace.StrategyLadder, false, false, false},
		{"fork", faultspace.StrategyFork, false, false, false},
		{"snapshot+pre", faultspace.StrategySnapshot, true, false, false},
		{"ladder+pre", faultspace.StrategyLadder, true, false, false},
		{"fork+pre", faultspace.StrategyFork, true, false, false},
		{"snapshot+pre+memo", faultspace.StrategySnapshot, true, true, false},
		{"ladder+pre+memo", faultspace.StrategyLadder, true, true, false},
		{"snapshot+pre+memo+trace", faultspace.StrategySnapshot, true, true, true},
		{"ladder+pre+memo+trace", faultspace.StrategyLadder, true, true, true},
	}
	for _, bench := range benches {
		p, err := bench.spec.Baseline()
		if err != nil {
			b.Fatal(err)
		}
		for _, st := range strategies {
			b.Run(bench.name+"/"+st.name, func(b *testing.B) {
				runFullScanBench(b, p, bench.name, st.name, st.trace, faultspace.ScanOptions{
					Strategy:  st.strat,
					Predecode: st.predecode,
					Memo:      st.memo,
				})
			})
		}
	}

	// Attack-space variants: the instruction-skip, PC-corruption and
	// multi-bit burst models under the recommended accelerated
	// configuration, tracked as their own BENCH_scan.json rows.
	spaces := []struct {
		name  string
		space faultspace.SpaceKind
	}{
		{"skip", faultspace.SpaceSkip},
		{"pc", faultspace.SpacePC},
		{"burst2", faultspace.SpaceBurst2},
		{"burst4", faultspace.SpaceBurst4},
	}
	p, err := benches[0].spec.Baseline()
	if err != nil {
		b.Fatal(err)
	}
	for _, sp := range spaces {
		b.Run(benches[0].name+"/"+sp.name+"/snapshot+pre", func(b *testing.B) {
			runFullScanBench(b, p, benches[0].name, "snapshot+pre", false, faultspace.ScanOptions{
				Space:     sp.space,
				Predecode: true,
			})
		})
	}
}

// runFullScanBench times one scan configuration and records the result
// (with its per-op telemetry counters) for BENCH_scan.json.
func runFullScanBench(b *testing.B, p *faultspace.Program, benchName, stratName string, trace bool, opts faultspace.ScanOptions) {
	// The scans run instrumented: telemetry is designed to be free (see
	// BenchmarkTelemetryOverhead), and its counters land in
	// BENCH_scan.json next to the timing they explain.
	reg := faultspace.NewTelemetry()
	if trace {
		reg.EnableSpans(faultspace.NewTraceID(), "bench", 0)
	}
	opts.Telemetry = reg
	classes := 0
	for i := 0; i < b.N; i++ {
		res, err := faultspace.Scan(p, opts)
		if err != nil {
			b.Fatal(err)
		}
		classes = len(res.Outcomes)
		if trace {
			// Drain per iteration, as a fleet worker does per submission;
			// otherwise the recorder fills and later iterations measure the
			// cheaper drop path instead of span recording.
			reg.SpanRecorder().Drain()
		}
	}
	counters := make(map[string]float64)
	for name, v := range reg.Snapshot().Counters {
		counters[name] = float64(v) / float64(b.N)
	}
	r := scanBenchResult{
		Benchmark: benchName,
		Strategy:  stratName,
		Classes:   classes,
		NsPerOp:   float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		Counters:  counters,
	}
	if opts.Space != 0 && opts.Space != faultspace.SpaceMemory {
		r.Space = opts.Space.String()
	}
	// The framework re-runs each sub-benchmark while calibrating b.N;
	// keep only the final (longest) run.
	scanBench.Lock()
	defer scanBench.Unlock()
	for i := range scanBench.results {
		if scanBench.results[i].Benchmark == r.Benchmark &&
			scanBench.results[i].Strategy == r.Strategy &&
			scanBench.results[i].Space == r.Space {
			scanBench.results = append(scanBench.results[:i], scanBench.results[i+1:]...)
			break
		}
	}
	scanBench.results = append(scanBench.results, r)
}

// BenchmarkAblationSnapshotVsRerun compares the two experiment-execution
// strategies on the same full scan: forking from snapshots at the
// injection slot vs re-executing the golden prefix for every experiment.
func BenchmarkAblationSnapshotVsRerun(b *testing.B) {
	p, err := progs.BinSem2(benchSizes.BinSemRounds).Baseline()
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name  string
		rerun bool
	}{{"snapshot", false}, {"rerun", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := faultspace.Scan(p, faultspace.ScanOptions{Rerun: mode.rerun}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationParallelScan measures the scan with 1 worker vs
// GOMAXPROCS workers.
func BenchmarkAblationParallelScan(b *testing.B) {
	p, err := progs.BinSem2(benchSizes.BinSemRounds).Baseline()
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(w.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := faultspace.Scan(p, faultspace.ScanOptions{Workers: w.workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationGranularity quantifies the def/use granularity choice:
// per-bit classes (sound: outcomes can differ per bit) vs hypothetical
// per-byte grouping (what several published tools use). It reports both
// class counts; the per-byte variant under-counts experiments by ~8x at
// the cost of conflating distinct outcomes.
func BenchmarkAblationGranularity(b *testing.B) {
	p, err := progs.Sync2(benchSizes.SyncRounds, benchSizes.SyncBufBytes).Baseline()
	if err != nil {
		b.Fatal(err)
	}
	t := faultspace.Target(p)
	golden, fs, err := t.Prepare(1 << 22)
	if err != nil {
		b.Fatal(err)
	}
	var perBit, perByte int
	for i := 0; i < b.N; i++ {
		fs2, err := pruning.Build(golden)
		if err != nil {
			b.Fatal(err)
		}
		perBit = len(fs2.Classes)
		seen := make(map[[2]uint64]struct{}, len(fs2.Classes))
		for _, c := range fs2.Classes {
			seen[[2]uint64{c.UseCycle, c.Bit / 8}] = struct{}{}
		}
		perByte = len(seen)
	}
	_ = fs
	b.ReportMetric(float64(perBit), "classes-per-bit")
	b.ReportMetric(float64(perByte), "classes-per-byte")
}

// BenchmarkClusterScan measures a distributed full scan over loopback
// HTTP with 1, 2 and 4 workers against the same campaign, exposing the
// coordination overhead and the scaling of leased work units (DESIGN.md
// §4b). Compare with BenchmarkAblationParallelScan for the in-process
// parallelism baseline.
func BenchmarkClusterScan(b *testing.B) {
	p, err := progs.BinSem2(benchSizes.BinSemRounds).Baseline()
	if err != nil {
		b.Fatal(err)
	}
	for _, strat := range []struct {
		name  string
		strat faultspace.Strategy
	}{
		{"snapshot", faultspace.StrategySnapshot},
		{"ladder", faultspace.StrategyLadder},
	} {
		for _, workers := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("strategy=%s/workers=%d", strat.name, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					addrCh := make(chan string, 1)
					var wg sync.WaitGroup
					wg.Add(workers)
					go func() {
						addr := <-addrCh
						for j := 0; j < workers; j++ {
							go func(j int) {
								defer wg.Done()
								if err := faultspace.JoinScan(addr, faultspace.JoinOptions{
									WorkerID: fmt.Sprintf("w%d", j),
									Strategy: strat.strat,
								}); err != nil {
									b.Error(err)
								}
							}(j)
						}
					}()
					_, err := faultspace.ServeScan(p, "127.0.0.1:0", faultspace.ServeOptions{
						UnitSize: 16,
						OnListen: func(addr string) { addrCh <- addr },
					})
					if err != nil {
						b.Fatal(err)
					}
					wg.Wait()
				}
			})
		}
	}
}

// --- Component performance benchmarks ---

// BenchmarkSimulatorThroughput measures raw simulator speed in
// instructions per second on the hardened sync2 golden run.
func BenchmarkSimulatorThroughput(b *testing.B) {
	p, err := progs.Sync2(3, 64).Hardened()
	if err != nil {
		b.Fatal(err)
	}
	m, err := machine.New(machine.Config{RAMSize: p.RAMSize}, p.Code, p.Image)
	if err != nil {
		b.Fatal(err)
	}
	reset := m.Snapshot()
	b.ResetTimer()
	var total uint64
	for i := 0; i < b.N; i++ {
		m.Restore(reset)
		if st := m.Run(1 << 22); st != machine.StatusHalted {
			b.Fatalf("status %v", st)
		}
		total += m.Cycles()
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "instr/s")
}

// BenchmarkAssembler measures assembling the full sync2 hardened source
// (parse, harden expansion, two-pass assembly).
func BenchmarkAssembler(b *testing.B) {
	spec := progs.Sync2(3, 64)
	for i := 0; i < b.N; i++ {
		if _, err := spec.Hardened(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPruningBuild measures def/use analysis of a hardened kernel
// golden trace.
func BenchmarkPruningBuild(b *testing.B) {
	p, err := progs.Sync2(3, 64).Hardened()
	if err != nil {
		b.Fatal(err)
	}
	golden, err := trace.Record(p.Name, machine.Config{RAMSize: p.RAMSize}, p.Code, p.Image, 1<<22)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pruning.Build(golden); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExperimentExecution measures the cost of a single fault-
// injection experiment (snapshot restore + run to completion + classify).
func BenchmarkExperimentExecution(b *testing.B) {
	p, err := progs.BinSem2(2).Baseline()
	if err != nil {
		b.Fatal(err)
	}
	t := faultspace.Target(p)
	golden, fs, err := t.Prepare(1 << 22)
	if err != nil {
		b.Fatal(err)
	}
	if len(fs.Classes) == 0 {
		b.Fatal("no classes")
	}
	cls := fs.Classes[len(fs.Classes)/2]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := campaign.RunSingle(t, golden, campaign.Config{}, cls.Slot(), cls.Bit); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMetrics measures the pure-math metric layer (coverage,
// extrapolation, Poisson, Wilson) — it should be effectively free next to
// the campaigns.
func BenchmarkMetrics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := metrics.Coverage(48, 128); err != nil {
			b.Fatal(err)
		}
		if _, err := metrics.ExtrapolateFailures(1<<20, 37, 1000); err != nil {
			b.Fatal(err)
		}
		if _, err := metrics.PoissonPMF(1.3e-13, 2); err != nil {
			b.Fatal(err)
		}
		if _, err := metrics.WilsonInterval(37, 1000, metrics.Z95); err != nil {
			b.Fatal(err)
		}
	}
}
