package faultspace_test

import (
	"fmt"
	"log"

	"faultspace"
	"faultspace/internal/harden"
	"faultspace/internal/progs"
)

// Example demonstrates the core pipeline on the paper's §IV "Hi" program:
// assemble, scan the complete fault space, and read both the per-program
// coverage and the comparison-safe absolute failure count.
func Example() {
	src := `
        .ram    2
        .equ    SERIAL, 0x10000
        sbi     'H', 0(r0)
        nop
        sbi     'i', 1(r0)
        lb      r1, 0(r0)
        sb      r1, SERIAL(r0)
        lb      r2, 1(r0)
        sb      r2, SERIAL(r0)
        halt
`
	prog, err := faultspace.AssembleSource("hi", src)
	if err != nil {
		log.Fatal(err)
	}
	scan, err := faultspace.Scan(prog, faultspace.ScanOptions{})
	if err != nil {
		log.Fatal(err)
	}
	a, err := faultspace.Analyze(scan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("output %q, w = %d, F = %d, coverage = %.1f%%\n",
		scan.Golden.Serial, a.SpaceSize, a.FailWeight, 100*a.CoverageWeighted)
	// Output: output "Hi", w = 128, F = 48, coverage = 62.5%
}

// ExampleCompare shows how the dilution cheat (§IV-B) fools coverage but
// not the failure-count metric.
func ExampleCompare() {
	spec := progs.Hi()
	base, err := spec.Baseline()
	if err != nil {
		log.Fatal(err)
	}
	diluted, err := spec.WithVariant(harden.Dilution{NOPs: 4})
	if err != nil {
		log.Fatal(err)
	}

	analyze := func(p *faultspace.Program) faultspace.Analysis {
		scan, err := faultspace.Scan(p, faultspace.ScanOptions{})
		if err != nil {
			log.Fatal(err)
		}
		return faultspace.MustAnalyze(scan)
	}
	cmp, err := faultspace.Compare(analyze(base), analyze(diluted))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coverage gain: %+.1f pp\n", cmp.CoverageGainWeighted)
	fmt.Printf("failure ratio: %.3f\n", cmp.RatioWeighted)
	fmt.Printf("misleading: %v\n", cmp.Misleading())
	// Output:
	// coverage gain: +12.5 pp
	// failure ratio: 1.000
	// misleading: true
}

// ExampleSample estimates failure counts from a sampling campaign and
// extrapolates them to the fault-space size (§V-C, Corollary 2).
func ExampleSample() {
	prog, err := progs.Hi().Baseline()
	if err != nil {
		log.Fatal(err)
	}
	sr, err := faultspace.Sample(prog, faultspace.SampleOptions{N: 4000, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("population %d, experiments executed %d\n", sr.Population, sr.Experiments)
	fmt.Printf("extrapolated failures ~%.0f (truth: 48)\n", sr.ExtrapolatedFailures())
	// Output:
	// population 128, experiments executed 16
	// extrapolated failures ~47 (truth: 48)
}
