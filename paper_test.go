package faultspace

import (
	"testing"

	"faultspace/internal/harden"
	"faultspace/internal/progs"
)

// TestHiFigure3Exact verifies the paper's §IV "Hi" Gedankenexperiment
// numbers exactly: N = 128 fault-space coordinates, F = 48 failures,
// c_baseline = 62.5 %; after DFT (4 prepended NOPs) N = 192, F = 48,
// c_hardened = 75.0 %.
func TestHiFigure3Exact(t *testing.T) {
	spec := progs.Hi()

	base, err := spec.Baseline()
	if err != nil {
		t.Fatal(err)
	}
	baseScan, err := Scan(base, ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a := MustAnalyze(baseScan)
	if a.SpaceSize != 128 {
		t.Errorf("baseline fault-space size = %d, want 128", a.SpaceSize)
	}
	if a.FailWeight != 48 {
		t.Errorf("baseline weighted failures = %d, want 48", a.FailWeight)
	}
	if a.CoverageWeighted != 0.625 {
		t.Errorf("baseline coverage = %v, want 0.625", a.CoverageWeighted)
	}

	dft, err := spec.WithVariant(harden.Dilution{NOPs: 4})
	if err != nil {
		t.Fatal(err)
	}
	dftScan, err := Scan(dft, ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d := MustAnalyze(dftScan)
	if d.SpaceSize != 192 {
		t.Errorf("DFT fault-space size = %d, want 192", d.SpaceSize)
	}
	if d.FailWeight != 48 {
		t.Errorf("DFT weighted failures = %d, want 48", d.FailWeight)
	}
	if d.CoverageWeighted != 0.75 {
		t.Errorf("DFT coverage = %v, want 0.75", d.CoverageWeighted)
	}

	cmp, err := Compare(a, d)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.RatioWeighted != 1.0 {
		t.Errorf("DFT failure ratio = %v, want exactly 1 (DFT prevents nothing)", cmp.RatioWeighted)
	}
	if !cmp.CoverageSaysImproved() {
		t.Error("coverage metric should (misleadingly) claim DFT improved the program")
	}
	if cmp.FailuresSayImproved() {
		t.Error("failure counts must not claim DFT improved the program")
	}
}

// TestKernelScanShapes asserts the Figure-2 shapes of the paper on full
// fault-space scans of the kernel benchmarks (EXPERIMENTS.md rows F2a-F2g):
//
//   - bin_sem2: SUM+DMR genuinely helps — weighted failure ratio well
//     below 1, coverage also up.
//   - sync2: the coverage metric claims an improvement while the weighted
//     failure count worsens by more than a factor of five (the paper's
//     headline result, §V-B).
//   - Pitfall 1: unweighted and weighted coverage diverge by tens of
//     percentage points for the baselines.
func TestKernelScanShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full kernel scans are slow")
	}
	type shape struct {
		spec       progs.Spec
		minRatio   float64
		maxRatio   float64
		misleading bool
	}
	shapes := []shape{
		{spec: progs.BinSem2(4), minRatio: 0, maxRatio: 0.6, misleading: false},
		{spec: progs.Sync2(3, 64), minRatio: 5, maxRatio: 100, misleading: true},
		// mbox1 keeps all message-path state in protected kernel objects:
		// like bin_sem2, hardening genuinely helps.
		{spec: progs.Mbox1(5), minRatio: 0, maxRatio: 0.7, misleading: false},
		// preempt1's preempted thread contexts live entirely in the
		// protected ICTX areas; hardening eliminates nearly all failures.
		{spec: progs.Preempt1(40, 48), minRatio: 0, maxRatio: 0.3, misleading: false},
		// sort1's whole working set is protected; every baseline class
		// fails (order-sensitive checksum + sortedness check), hardened
		// eliminates them all.
		{spec: progs.Sort1(12), minRatio: 0, maxRatio: 0.1, misleading: false},
	}
	for _, sh := range shapes {
		sh := sh
		t.Run(sh.spec.Name, func(t *testing.T) {
			base, err := sh.spec.Baseline()
			if err != nil {
				t.Fatal(err)
			}
			hard, err := sh.spec.Hardened()
			if err != nil {
				t.Fatal(err)
			}
			baseScan, err := Scan(base, ScanOptions{})
			if err != nil {
				t.Fatal(err)
			}
			hardScan, err := Scan(hard, ScanOptions{})
			if err != nil {
				t.Fatal(err)
			}
			ab := MustAnalyze(baseScan)
			ah := MustAnalyze(hardScan)
			cmp, err := Compare(ab, ah)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s baseline: Δt=%d w=%d classes=%d failW=%d failC=%d covW=%.4f covU=%.4f",
				ab.Name, ab.RuntimeCycles, ab.SpaceSize, ab.Classes, ab.FailWeight, ab.FailClasses,
				ab.CoverageWeighted, ab.CoverageUnweighted)
			t.Logf("%s hardened: Δt=%d w=%d classes=%d failW=%d failC=%d covW=%.4f covU=%.4f",
				ah.Name, ah.RuntimeCycles, ah.SpaceSize, ah.Classes, ah.FailWeight, ah.FailClasses,
				ah.CoverageWeighted, ah.CoverageUnweighted)
			t.Logf("ratio(weighted)=%.3f ratio(unweighted)=%.3f covGainW=%.2fpp covGainU=%.2fpp misleading=%v",
				cmp.RatioWeighted, cmp.RatioUnweighted, cmp.CoverageGainWeighted,
				cmp.CoverageGainUnweighted, cmp.Misleading())

			if cmp.RatioWeighted < sh.minRatio || cmp.RatioWeighted > sh.maxRatio {
				t.Errorf("weighted ratio = %.3f, want in [%g, %g]",
					cmp.RatioWeighted, sh.minRatio, sh.maxRatio)
			}
			if cmp.Misleading() != sh.misleading {
				t.Errorf("misleading = %v, want %v", cmp.Misleading(), sh.misleading)
			}
			if !cmp.CoverageSaysImproved() {
				t.Error("the coverage metric must (rightly or wrongly) claim an improvement")
			}
			// Pitfall 1 on the baseline: the coverage accounting rules
			// disagree substantially (the paper reports 9.1-33.2 pp gaps).
			gap := metricsAbs(ab.CoverageWeighted - ab.CoverageUnweighted)
			if gap < 0.05 {
				t.Errorf("baseline weighted/unweighted coverage gap = %.3f, want > 0.05", gap)
			}
			// Figure 2g: hardening costs runtime and memory.
			if ah.RuntimeCycles <= ab.RuntimeCycles {
				t.Error("hardened runtime must exceed baseline")
			}
			if hard.RAMSize <= base.RAMSize {
				t.Error("hardened memory must exceed baseline")
			}
		})
	}
}

func metricsAbs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TestClock1ScanWithInterrupts verifies that fault-injection campaigns
// work unchanged on interrupt-driven programs: the timer replays
// deterministically, scans partition cleanly, and outcomes are sane.
func TestClock1ScanWithInterrupts(t *testing.T) {
	if testing.Short() {
		t.Skip("scans are slow")
	}
	p, err := progs.Clock1(4, 64).Baseline()
	if err != nil {
		t.Fatal(err)
	}
	scan1, err := Scan(p, ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	scan2, err := Scan(p, ScanOptions{Rerun: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range scan1.Outcomes {
		if scan1.Outcomes[i] != scan2.Outcomes[i] {
			t.Fatalf("class %d differs between strategies with interrupts", i)
		}
	}
	a := MustAnalyze(scan1)
	if a.FailWeight == 0 {
		t.Error("clock1 must have some failing coordinates (work buffer corruption)")
	}
	if a.CoverageWeighted <= 0.5 {
		t.Errorf("coverage %v suspiciously low", a.CoverageWeighted)
	}

	// The register fault space must also work with interrupts.
	regScan, err := Scan(p, ScanOptions{Space: SpaceRegisters})
	if err != nil {
		t.Fatal(err)
	}
	ra := MustAnalyze(regScan)
	if ra.Space != SpaceRegisters || ra.MemoryBits != 480 {
		t.Errorf("register analysis geometry wrong: %+v", ra)
	}
}
