package faultspace

import (
	"io"

	"faultspace/internal/archive"
)

// Scan archives persist completed campaigns as JSON so that expensive
// scans can be stored, shared and re-analyzed without re-running the
// experiments — the role the FAIL* result database plays for the paper's
// campaigns. An archive is self-contained for analysis purposes: it keeps
// the fault-space geometry, every equivalence class with its outcome, and
// the golden run's reference output.
//
// The codec lives in internal/archive; the campaign service's
// content-addressed result store (internal/service) persists exactly
// these bytes, keyed by the campaign identity hash, which is what makes
// an archived report byte-identical to a live scan's (invariant 12).

// SaveScan writes a completed scan as a JSON archive.
func SaveScan(w io.Writer, r *ScanResult) error {
	return archive.Encode(w, r)
}

// LoadScan reads a scan archive and reconstructs a ScanResult sufficient
// for analysis and reporting (Analyze, Compare, outcome dumps). The
// reconstructed result has no program attached and cannot be re-executed.
// The fault-space partition invariant is re-verified, so inconsistent or
// tampered archives are rejected.
func LoadScan(r io.Reader) (*ScanResult, error) {
	return archive.Decode(r)
}
